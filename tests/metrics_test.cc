// Two metric worlds share this battery: the ML evaluation metrics
// (ml/metrics.h — accuracy, confusion matrices, AUC) and the process
// observability metrics (common/metrics.h — counters, gauges,
// histograms, the registry behind "!metrics").
#include "ml/metrics.h"

#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace gbx {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 1}, {0, 0}), 0.0);
}

TEST(ConfusionMatrixTest, EntriesLandInRightCells) {
  const Matrix cm = ConfusionMatrix({0, 0, 1, 1, 2}, {0, 1, 1, 1, 0}, 3);
  EXPECT_DOUBLE_EQ(cm.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(cm.At(0, 1), 1);
  EXPECT_DOUBLE_EQ(cm.At(1, 1), 2);
  EXPECT_DOUBLE_EQ(cm.At(2, 0), 1);
  EXPECT_DOUBLE_EQ(cm.At(2, 2), 0);
}

TEST(PerClassRecallTest, Values) {
  const std::vector<double> recall =
      PerClassRecall({0, 0, 1, 1, 1, 2}, {0, 1, 1, 1, 0, 0}, 3);
  EXPECT_DOUBLE_EQ(recall[0], 0.5);
  EXPECT_NEAR(recall[1], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(recall[2], 0.0);
}

TEST(PerClassRecallTest, AbsentClassIsNaN) {
  const std::vector<double> recall = PerClassRecall({0, 0}, {0, 0}, 3);
  EXPECT_TRUE(std::isnan(recall[1]));
  EXPECT_TRUE(std::isnan(recall[2]));
}

TEST(GMeanTest, PerfectPredictionIsOne) {
  EXPECT_DOUBLE_EQ(GMean({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
}

TEST(GMeanTest, ZeroRecallClassZeroesGMean) {
  EXPECT_DOUBLE_EQ(GMean({0, 0, 1, 1}, {0, 0, 0, 0}, 2), 0.0);
}

TEST(GMeanTest, GeometricMeanOfRecalls) {
  // recall(0) = 1.0, recall(1) = 0.5 -> gmean = sqrt(0.5).
  EXPECT_NEAR(GMean({0, 0, 1, 1}, {0, 0, 1, 0}, 2), std::sqrt(0.5), 1e-12);
}

TEST(GMeanTest, SkipsAbsentClasses) {
  // Class 2 never appears in y_true: gmean over classes 0 and 1 only.
  EXPECT_NEAR(GMean({0, 0, 1, 1}, {0, 0, 1, 0}, 3), std::sqrt(0.5), 1e-12);
}

TEST(MacroF1Test, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
}

TEST(MacroF1Test, KnownValue) {
  // y_true = {0,0,1,1}, y_pred = {0,1,1,1}:
  // class 0: precision 1, recall .5 -> F1 = 2/3
  // class 1: precision 2/3, recall 1 -> F1 = 0.8
  EXPECT_NEAR(MacroF1({0, 0, 1, 1}, {0, 1, 1, 1}, 2), (2.0 / 3 + 0.8) / 2,
              1e-12);
}

TEST(BalancedAccuracyTest, MeanOfRecalls) {
  // recall(0) = 1.0, recall(1) = 0.5 -> balanced = 0.75.
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 0, 1, 1}, {0, 0, 1, 0}, 2), 0.75);
}

TEST(BalancedAccuracyTest, IgnoresAbsentClasses) {
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0, 0, 1, 1}, {0, 0, 1, 0}, 4), 0.75);
}

TEST(BinaryAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(
      BinaryAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(BinaryAucTest, ReversedRankingIsZero) {
  EXPECT_DOUBLE_EQ(
      BinaryAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(BinaryAucTest, RandomScoresGiveHalfOnTies) {
  EXPECT_DOUBLE_EQ(BinaryAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(BinaryAucTest, KnownMixedCase) {
  // positives at scores {0.8, 0.3}, negatives at {0.5, 0.1}:
  // pairs won: (0.8>0.5), (0.8>0.1), (0.3<0.5 lost), (0.3>0.1) -> 3/4.
  EXPECT_DOUBLE_EQ(BinaryAuc({1, 0, 1, 0}, {0.8, 0.5, 0.3, 0.1}), 0.75);
}

TEST(BinaryAucTest, CustomPositiveClass) {
  EXPECT_DOUBLE_EQ(
      BinaryAuc({2, 2, 7, 7}, {0.1, 0.2, 0.8, 0.9}, /*positive_class=*/7),
      1.0);
}

TEST(MetricsDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(Accuracy({0, 1}, {0}), "GBX_CHECK");
}

TEST(MetricsDeathTest, AucNeedsBothClasses) {
  EXPECT_DEATH(BinaryAuc({1, 1}, {0.5, 0.6}), "GBX_CHECK");
}

// ---------------------------------------------------------------------------
// common/metrics.h: the observability registry.
//
// Observation sites compile to no-ops under -DGBX_METRICS=OFF, so the
// semantic assertions below skip there — the OFF build is the BENCH
// escape hatch, not a supported test configuration.

#define SKIP_IF_METRICS_COMPILED_OUT()                              \
  if (!metrics::kCompiledIn) {                                      \
    GTEST_SKIP() << "metrics sites compiled out (GBX_METRICS=OFF)"; \
  }

/// Test threads honoring GBX_THREADS like the serve batteries do.
int MetricsTestThreads() {
  if (const char* env = std::getenv("GBX_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4;
}

TEST(ObsCounterTest, IncrementsAreExactUnderConcurrency) {
  SKIP_IF_METRICS_COMPILED_OUT();
  metrics::Counter c;
  EXPECT_EQ(c.Value(), 0);
  const int threads = MetricsTestThreads();
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  // Relaxed atomics trade ordering, never counts.
  EXPECT_EQ(c.Value(), static_cast<std::int64_t>(threads) * kPerThread);
}

TEST(ObsGaugeTest, SetAddAndHighWaterMark) {
  SKIP_IF_METRICS_COMPILED_OUT();
  metrics::Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(7);  // below current: no effect
  EXPECT_EQ(g.Value(), 12);
  g.SetMax(40);
  EXPECT_EQ(g.Value(), 40);
}

TEST(ObsHistogramTest, ExactCountSumAndBucketEdges) {
  SKIP_IF_METRICS_COMPILED_OUT();
  // Buckets (le): 1, 10, 100, +Inf.
  metrics::Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // -> le=1
  h.Observe(1.0);    // boundary: le is inclusive -> le=1
  h.Observe(7.0);    // -> le=10
  h.Observe(1000.0); // -> +Inf
  const metrics::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 1008.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2);  // 0.5 and the 1.0 boundary
  EXPECT_EQ(s.counts[1], 1);
  EXPECT_EQ(s.counts[2], 0);
  EXPECT_EQ(s.counts[3], 1);
}

TEST(ObsHistogramTest, QuantilesAreMonotonicAndClampedToRange) {
  SKIP_IF_METRICS_COMPILED_OUT();
  metrics::Histogram h;  // default exponential latency bounds
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 0.01);  // 0.01..10 ms
  const metrics::HistogramSnapshot s = h.Snapshot();
  double prev = s.min;
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double est = s.Quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;
    EXPECT_GE(est, s.min);
    EXPECT_LE(est, s.max);  // p99 can never exceed the observed max
    prev = est;
  }
  // The interpolated median of a uniform ramp lands near the truth.
  EXPECT_NEAR(s.Quantile(0.5), 5.0, 2.0);
}

TEST(ObsHistogramTest, MergeAddsCountsAndKeepsExtremes) {
  SKIP_IF_METRICS_COMPILED_OUT();
  metrics::Histogram a({1.0, 10.0});
  metrics::Histogram b({1.0, 10.0});
  a.Observe(0.5);
  b.Observe(50.0);
  metrics::HistogramSnapshot s = a.Snapshot();
  s.Merge(b.Snapshot());
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.sum, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 50.0);
}

TEST(ObsHistogramTest, ExponentialBoundsDoubleEachStep) {
  const std::vector<double> bounds =
      metrics::Histogram::ExponentialBounds(0.001, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  }
}

TEST(ObsRegistryTest, SameSeriesSamePointerDistinctLabelsDistinct) {
  auto& reg = metrics::MetricsRegistry::Default();
  metrics::Counter* a =
      reg.GetCounter("obs_test_total", {{"result", "ok"}}, "test series");
  metrics::Counter* b =
      reg.GetCounter("obs_test_total", {{"result", "ok"}});
  metrics::Counter* c =
      reg.GetCounter("obs_test_total", {{"result", "error"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ObsRegistryTest, KindClashYieldsUsableDetachedInstrument) {
  auto& reg = metrics::MetricsRegistry::Default();
  metrics::Counter* c = reg.GetCounter("obs_test_clash", {}, "");
  ASSERT_NE(c, nullptr);
  // Same series name as a different kind: the registry must not crash
  // or corrupt the existing series — it hands back a detached instance.
  metrics::Gauge* g = reg.GetGauge("obs_test_clash", {}, "");
  ASSERT_NE(g, nullptr);
  g->Set(3);
  c->Inc();
  SUCCEED();
}

TEST(ObsRegistryTest, PrometheusTextIsWellFormed) {
  SKIP_IF_METRICS_COMPILED_OUT();
  auto& reg = metrics::MetricsRegistry::Default();
  reg.GetCounter("obs_prom_total", {{"kind", "x"}}, "prom shape test")
      ->Inc(3);
  metrics::Histogram* h =
      reg.GetHistogram("obs_prom_ms", {}, "prom histogram", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(99.0);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# HELP obs_prom_total prom shape test"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE obs_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_prom_total{kind=\"x\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_prom_ms histogram"), std::string::npos);
  // Cumulative buckets end at +Inf and agree with _count.
  EXPECT_NE(text.find("obs_prom_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_prom_ms_count 2"), std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value".
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << "bad line: " << line;
  }
}

TEST(ObsRegistryTest, JsonTextCarriesHistogramSummary) {
  SKIP_IF_METRICS_COMPILED_OUT();
  auto& reg = metrics::MetricsRegistry::Default();
  metrics::Histogram* h =
      reg.GetHistogram("obs_json_ms", {{"stage", "t"}}, "", {1.0, 10.0});
  h->Observe(2.0);
  const std::string json = reg.JsonText();
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"obs_json_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"stage\":\"t\"}"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  for (const char* field : {"\"count\":", "\"sum\":", "\"min\":",
                            "\"max\":", "\"mean\":", "\"p50\":", "\"p90\":",
                            "\"p99\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(ObsScopedTimerTest, RecordsExactlyOneObservation) {
  SKIP_IF_METRICS_COMPILED_OUT();
  metrics::Histogram h({1.0, 1000.0});
  {
    metrics::ScopedTimerMs timer(&h);
  }
  EXPECT_EQ(h.Snapshot().count, 1);
  {
    metrics::ScopedTimerMs timer(&h);
    timer.StopAndRecord();
  }  // destructor must not double-record after StopAndRecord
  EXPECT_EQ(h.Snapshot().count, 2);
  {
    metrics::ScopedTimerMs noop(nullptr);  // disarmed: no crash, no record
  }
  EXPECT_EQ(h.Snapshot().count, 2);
}

}  // namespace
}  // namespace gbx
