#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"
#include "ml/report.h"

namespace gbx {
namespace {

TEST(GaussianNbTest, SeparatesGaussianBlobs) {
  BlobsConfig cfg;
  cfg.num_samples = 600;
  cfg.num_classes = 3;
  cfg.num_features = 4;
  cfg.center_spread = 6.0;
  cfg.cluster_std = 1.0;
  Pcg32 gen(1);
  const Dataset all = MakeGaussianBlobs(cfg, &gen);
  Pcg32 split_rng(2);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  GaussianNbClassifier nb;
  Pcg32 rng(3);
  nb.Fit(split.train, &rng);
  // NB is the Bayes-optimal family for isotropic Gaussian blobs.
  EXPECT_GT(Accuracy(split.test.y(), nb.PredictBatch(split.test.x())),
            0.95);
}

TEST(GaussianNbTest, PriorsMatter) {
  // Identical overlapping distributions, 9:1 priors: NB must predict the
  // majority class nearly always in the overlap region.
  Pcg32 gen(4);
  Matrix x(500, 1);
  std::vector<int> y(500);
  for (int i = 0; i < 500; ++i) {
    x.At(i, 0) = gen.NextGaussian();
    y[i] = i < 450 ? 0 : 1;
  }
  const Dataset ds(std::move(x), std::move(y));
  GaussianNbClassifier nb;
  Pcg32 rng(5);
  nb.Fit(ds, &rng);
  const double q[] = {0.0};
  EXPECT_EQ(nb.Predict(q), 0);
  EXPECT_GT(nb.LogPosterior(q, 0), nb.LogPosterior(q, 1));
}

TEST(GaussianNbTest, LogPosteriorOrdersWithPrediction) {
  BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_classes = 4;
  Pcg32 gen(6);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  GaussianNbClassifier nb;
  Pcg32 rng(7);
  nb.Fit(ds, &rng);
  for (int i = 0; i < 20; ++i) {
    const int pred = nb.Predict(ds.row(i));
    for (int c = 0; c < 4; ++c) {
      EXPECT_GE(nb.LogPosterior(ds.row(i), pred),
                nb.LogPosterior(ds.row(i), c));
    }
  }
}

TEST(GaussianNbTest, HandlesConstantFeatures) {
  Matrix x(20, 2, 5.0);  // all-constant features
  std::vector<int> y(20);
  for (int i = 0; i < 20; ++i) y[i] = i < 14 ? 0 : 1;
  const Dataset ds(std::move(x), std::move(y));
  GaussianNbClassifier nb;
  Pcg32 rng(8);
  nb.Fit(ds, &rng);
  const double q[] = {5.0, 5.0};
  EXPECT_EQ(nb.Predict(q), 0);  // prior decides
}

TEST(GaussianNbTest, MissingClassNeverPredicted) {
  // num_classes = 3 but class 1 absent from training.
  const Dataset ds(Matrix::FromRows({{0.0}, {0.1}, {9.0}, {9.1}}),
                   {0, 0, 2, 2}, 3);
  GaussianNbClassifier nb;
  Pcg32 rng(9);
  nb.Fit(ds, &rng);
  for (double v : {-1.0, 0.05, 4.5, 9.05, 20.0}) {
    const double q[] = {v};
    EXPECT_NE(nb.Predict(q), 1);
  }
}

TEST(ClassificationReportTest, ValuesMatchMetrics) {
  const std::vector<int> y_true = {0, 0, 1, 1, 1, 2};
  const std::vector<int> y_pred = {0, 1, 1, 1, 0, 2};
  const ClassificationReport report =
      BuildClassificationReport(y_true, y_pred, 3);
  ASSERT_EQ(report.per_class.size(), 3u);
  EXPECT_DOUBLE_EQ(report.accuracy, Accuracy(y_true, y_pred));
  EXPECT_DOUBLE_EQ(report.balanced_accuracy,
                   BalancedAccuracy(y_true, y_pred, 3));
  EXPECT_DOUBLE_EQ(report.g_mean, GMean(y_true, y_pred, 3));
  // class 0: precision 1/2, recall 1/2; supports 2, 3, 1.
  EXPECT_DOUBLE_EQ(report.per_class[0].precision, 0.5);
  EXPECT_DOUBLE_EQ(report.per_class[0].recall, 0.5);
  EXPECT_EQ(report.per_class[1].support, 3);
  EXPECT_DOUBLE_EQ(report.per_class[2].f1, 1.0);
}

TEST(ClassificationReportTest, SkipsAbsentClasses) {
  const ClassificationReport report =
      BuildClassificationReport({0, 0}, {0, 0}, 5);
  EXPECT_EQ(report.per_class.size(), 1u);
  EXPECT_EQ(report.per_class[0].cls, 0);
}

TEST(ClassificationReportTest, ToStringContainsRows) {
  const ClassificationReport report =
      BuildClassificationReport({0, 1}, {0, 1}, 2);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("precision"), std::string::npos);
  EXPECT_NE(text.find("accuracy 1.0000"), std::string::npos);
}

}  // namespace
}  // namespace gbx
