#include "data/noise.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace gbx {
namespace {

Dataset MakeData(int n, int classes) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  Pcg32 rng(5);
  return MakeGaussianBlobs(cfg, &rng);
}

class NoiseRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseRatioTest, FlipsExactlyTheRequestedFraction) {
  const double ratio = GetParam();
  const Dataset clean = MakeData(500, 3);
  Dataset noisy = clean;
  Pcg32 rng(1);
  const std::vector<int> flipped = InjectClassNoise(&noisy, ratio, &rng);
  EXPECT_EQ(static_cast<int>(flipped.size()),
            static_cast<int>(500 * ratio));
  int changed = 0;
  for (int i = 0; i < clean.size(); ++i) {
    if (clean.label(i) != noisy.label(i)) ++changed;
  }
  EXPECT_EQ(changed, static_cast<int>(flipped.size()));
}

TEST_P(NoiseRatioTest, FlippedLabelsAlwaysDiffer) {
  const double ratio = GetParam();
  const Dataset clean = MakeData(400, 4);
  Dataset noisy = clean;
  Pcg32 rng(2);
  for (int idx : InjectClassNoise(&noisy, ratio, &rng)) {
    EXPECT_NE(clean.label(idx), noisy.label(idx));
    EXPECT_GE(noisy.label(idx), 0);
    EXPECT_LT(noisy.label(idx), 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, NoiseRatioTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4));

TEST(NoiseTest, FeaturesUntouched) {
  const Dataset clean = MakeData(100, 2);
  Dataset noisy = clean;
  Pcg32 rng(3);
  InjectClassNoise(&noisy, 0.3, &rng);
  for (int i = 0; i < clean.size(); ++i) {
    for (int j = 0; j < clean.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(clean.feature(i, j), noisy.feature(i, j));
    }
  }
}

TEST(NoiseTest, ZeroRatioIsIdentity) {
  Dataset ds = MakeData(50, 2);
  const std::vector<int> before = ds.y();
  Pcg32 rng(4);
  EXPECT_TRUE(InjectClassNoise(&ds, 0.0, &rng).empty());
  EXPECT_EQ(ds.y(), before);
}

TEST(NoiseTest, Deterministic) {
  const Dataset clean = MakeData(200, 3);
  Dataset a = clean;
  Dataset b = clean;
  Pcg32 rng_a(9);
  Pcg32 rng_b(9);
  InjectClassNoise(&a, 0.2, &rng_a);
  InjectClassNoise(&b, 0.2, &rng_b);
  EXPECT_EQ(a.y(), b.y());
}

TEST(NoiseTest, WithClassNoiseLeavesOriginal) {
  const Dataset clean = MakeData(100, 2);
  Pcg32 rng(6);
  const Dataset noisy = WithClassNoise(clean, 0.4, &rng);
  int changed = 0;
  for (int i = 0; i < clean.size(); ++i) {
    if (clean.label(i) != noisy.label(i)) ++changed;
  }
  EXPECT_EQ(changed, 40);
}

TEST(NoiseDeathTest, SingleClassWithPositiveRatioAborts) {
  Dataset ds(Matrix::FromRows({{0.0}, {1.0}, {2.0}}), {0, 0, 0});
  Pcg32 rng(1);
  EXPECT_DEATH(InjectClassNoise(&ds, 0.5, &rng), "GBX_CHECK");
}

}  // namespace
}  // namespace gbx
