#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  ParallelFor(1000, 8, [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForTest, ZeroAndNegativeCountAreNoOps) {
  ParallelFor(0, 4, [](int) { FAIL(); });
  ParallelFor(-3, 4, [](int) { FAIL(); });
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  int sum = 0;
  // Capturing a plain int is only safe because 1 thread = serial inline.
  ParallelFor(5, 1, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 10);
}

TEST(ParallelForRangeTest, ChunksCoverRangeExactlyOnce) {
  std::vector<std::atomic<int>> counts(10007);
  ParallelForRange(10007, 64, 8, [&](int begin, int end) {
    ASSERT_LE(0, begin);
    ASSERT_LT(begin, end);
    ASSERT_LE(end, 10007);
    for (int i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (int i = 0; i < 10007; ++i) ASSERT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForRangeTest, GrainLargerThanCountMeansOneChunk) {
  std::atomic<int> calls{0};
  ParallelForRange(10, 1000, 8, [&](int begin, int end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, NestedLoopsRunSeriallyAndComplete) {
  // A parallel loop inside a pool task must serialize instead of
  // deadlocking on the shared pool.
  std::vector<std::atomic<int>> counts(64 * 64);
  ParallelFor(64, 4, [&](int i) {
    ParallelFor(64, 4, [&](int j) { counts[i * 64 + j].fetch_add(1); });
  });
  for (int i = 0; i < 64 * 64; ++i) ASSERT_EQ(counts[i].load(), 1);
}

TEST(ParallelForTest, ManyThreadsFewItems) {
  std::vector<std::atomic<int>> counts(3);
  ParallelFor(3, 64, [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelForTest, RepeatedCallsReuseThePool) {
  // Regression guard for job-handoff races: many small dispatches in a row.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    ParallelFor(17, 4, [&](int i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ResolveNumThreadsTest, ExplicitPositiveWins) {
  EXPECT_EQ(ResolveNumThreads(3), 3);
  EXPECT_EQ(ResolveNumThreads(1), 1);
}

TEST(ResolveNumThreadsTest, NonPositiveFallsBackToDefault) {
  EXPECT_EQ(ResolveNumThreads(0), DefaultNumThreads());
  EXPECT_EQ(ResolveNumThreads(-1), DefaultNumThreads());
  EXPECT_GE(DefaultNumThreads(), 1);
}

TEST(ResolveNumThreadsTest, GbxThreadsEnvOverridesDefault) {
  ASSERT_EQ(setenv("GBX_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultNumThreads(), 3);
  EXPECT_EQ(ResolveNumThreads(0), 3);
  EXPECT_EQ(ResolveNumThreads(5), 5);  // explicit still wins
  // Non-positive and garbage values are ignored.
  ASSERT_EQ(setenv("GBX_THREADS", "0", 1), 0);
  EXPECT_EQ(DefaultNumThreads(), HardwareThreads());
  ASSERT_EQ(setenv("GBX_THREADS", "junk", 1), 0);
  EXPECT_EQ(DefaultNumThreads(), HardwareThreads());
  ASSERT_EQ(unsetenv("GBX_THREADS"), 0);
  EXPECT_EQ(DefaultNumThreads(), HardwareThreads());
}

TEST(ThreadPoolTest, GrowsOnDemandAndReportsWorkers) {
  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::atomic<int>> counts(256);
  // Request more executors than the default pool size; the pool grows.
  pool.ParallelForRange(256, 1, 6, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  EXPECT_GE(pool.num_workers(), std::min(6, 256) - 1);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, DedicatedPoolIndependentOfGlobal) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2);
  std::atomic<long> sum{0};
  pool.ParallelForRange(1000, 16, 3, [&](int begin, int end) {
    long local = 0;
    for (int i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 1000L * 999 / 2);
}

TEST(ParallelForTest, DeterministicOutputSlots) {
  // The canonical usage pattern: disjoint output slots make the result
  // independent of scheduling. Compare a serial and a parallel fill.
  const int n = 4096;
  std::vector<double> serial(n), parallel(n);
  for (int i = 0; i < n; ++i) serial[i] = i * 0.5 + 1.0;
  ParallelFor(n, 8, [&](int i) { parallel[i] = i * 0.5 + 1.0; });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace gbx
