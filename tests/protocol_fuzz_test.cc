// Malformed-input battery for the gbx-wire front-end: truncated length
// prefixes, oversized declared lengths, garbage payloads, mid-frame
// disconnects, slow-loris dribbles, and a seeded-RNG mix of all of the
// above. The server must answer a structured error or close the
// connection — and keep serving valid clients — but never crash, hang,
// or leak (this suite runs under the asan CI job).
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace gbx {
namespace {

using servetest::MakeGbKnnBundle;
using servetest::ModelBundle;
using servetest::ParsePredictReply;
using servetest::PredictReply;
using servetest::SmallBatchOptions;
using servetest::TestClient;

/// A crafted frame header declaring `len` payload bytes.
std::string Header(std::uint32_t len) {
  std::string h(4, '\0');
  h[0] = static_cast<char>((len >> 24) & 0xff);
  h[1] = static_cast<char>((len >> 16) & 0xff);
  h[2] = static_cast<char>((len >> 8) & 0xff);
  h[3] = static_cast<char>(len & 0xff);
  return h;
}

class ProtocolFuzzTest : public servetest::ServeTestBase {
 protected:
  void SetUp() override {
    bundle_ = MakeGbKnnBundle("S5");
    auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
    ASSERT_TRUE(
        registry->Publish("default", servetest::LoadBundle(bundle_)).ok());
    server_ = std::make_unique<Server>(registry, options_);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// A fresh client must still get a bit-identical answer — the liveness
  /// probe every attack is followed by.
  void ExpectStillServing(int query = 0) {
    const Dataset& test = bundle_.split.test;
    TestClient probe(server_->port());
    const StatusOr<std::string> payload = probe.Call(FormatPredictPayload(
        "", test.row(query), test.num_features()));
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->label, bundle_.expected[query]);
  }

  std::string ValidQuery(int i = 0) const {
    const Dataset& test = bundle_.split.test;
    return FormatPredictPayload("", test.row(i), test.num_features());
  }

  ServerOptions options_;
  ModelBundle bundle_;
  std::unique_ptr<Server> server_;
};

TEST_F(ProtocolFuzzTest, TruncatedLengthPrefixThenDisconnect) {
  for (int cut = 1; cut < kFrameHeaderBytes; ++cut) {
    TestClient client(server_->port());
    const std::string header = Header(64);
    ASSERT_TRUE(client.SendRaw(header.data(), cut).ok());
    client.CloseAbruptly();
    ExpectStillServing(cut);
  }
}

TEST_F(ProtocolFuzzTest, OversizedDeclaredLengthGetsErrorThenClose) {
  for (const std::uint32_t len :
       {kDefaultMaxFrameBytes + 1, 0x7fffffffu, 0xffffffffu}) {
    TestClient client(server_->port());
    const std::string header = Header(len);
    ASSERT_TRUE(client.SendRaw(header.data(), header.size()).ok());
    // Framing is unrecoverable: one structured error frame, then close.
    const StatusOr<std::string> payload = client.Recv();
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    EXPECT_EQ(payload->rfind("error INVALID_ARGUMENT", 0), 0) << *payload;
    EXPECT_FALSE(client.Recv().ok());
    ExpectStillServing();
  }
  EXPECT_GE(server_->Stats().protocol_errors, 3);
}

TEST_F(ProtocolFuzzTest, ZeroLengthFrameIsAFramingError) {
  TestClient client(server_->port());
  const std::string header = Header(0);
  ASSERT_TRUE(client.SendRaw(header.data(), header.size()).ok());
  const StatusOr<std::string> payload = client.Recv();
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(payload->rfind("error INVALID_ARGUMENT", 0), 0) << *payload;
  EXPECT_FALSE(client.Recv().ok());
  ExpectStillServing();
}

TEST_F(ProtocolFuzzTest, GarbagePayloadKeepsConnectionUsable) {
  TestClient client(server_->port());
  // (A zero-length frame is a *framing* error with close-after-error
  // semantics — covered by ZeroLengthFrameIsAFramingError above.)
  for (const std::string garbage :
       {"hello world", "@", "@model", "1,2,up", "nan", "\x01\x02\x7f",
        "@default"}) {
    const StatusOr<std::string> payload = client.Call(garbage);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    EXPECT_EQ(payload->rfind("error ", 0), 0) << "'" << garbage << "' -> "
                                              << *payload;
  }
  // Payload-level errors must not poison the stream.
  const StatusOr<std::string> payload = client.Call(ValidQuery());
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(payload->rfind("ok ", 0), 0) << *payload;
  // "nan" may parse to a NaN double (libc++) and be rejected by the
  // engine instead of the payload parser, so count conservatively.
  EXPECT_GE(server_->Stats().protocol_errors, 6);
}

TEST_F(ProtocolFuzzTest, WrongArityQueryIsAStructuredError) {
  TestClient client(server_->port());
  std::vector<double> wide(bundle_.split.test.num_features() + 3, 0.25);
  const StatusOr<std::string> payload = client.Call(FormatPredictPayload(
      "", wide.data(), static_cast<int>(wide.size())));
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("error INVALID_ARGUMENT", 0), 0) << *payload;
  ExpectStillServing();
}

TEST_F(ProtocolFuzzTest, MidFrameDisconnectNeverWedgesTheServer) {
  for (int i = 0; i < 8; ++i) {
    TestClient client(server_->port());
    const std::string header = Header(100);
    ASSERT_TRUE(client.SendRaw(header.data(), header.size()).ok());
    const std::string partial(10 + i, 'x');
    ASSERT_TRUE(client.SendRaw(partial.data(), partial.size()).ok());
    client.CloseAbruptly();
  }
  ExpectStillServing();
}

TEST_F(ProtocolFuzzTest, AbortWithResponsesInFlightDropsThemSafely) {
  // Completions for dead connections must be discarded, not delivered.
  for (int round = 0; round < 4; ++round) {
    TestClient client(server_->port());
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(client.Send(ValidQuery(i)).ok());
    }
    client.CloseAbruptly();  // responses still being computed
  }
  ExpectStillServing();
}

TEST_F(ProtocolFuzzTest, SeededRandomMalformedBatteryNeverKillsTheServer) {
  Pcg32 rng(20250808);
  const int kRounds = 120;
  for (int round = 0; round < kRounds; ++round) {
    TestClient client(server_->port());
    switch (rng.NextInt(0, 5)) {
      case 0: {  // random byte soup, unframed
        std::string soup(rng.NextInt(1, 64), '\0');
        for (char& b : soup) b = static_cast<char>(rng.NextInt(0, 255));
        (void)client.SendRaw(soup.data(), soup.size());
        break;
      }
      case 1: {  // valid header, random payload bytes
        const int len = rng.NextInt(1, 48);
        std::string payload(len, '\0');
        for (char& b : payload) b = static_cast<char>(rng.NextInt(0, 255));
        (void)client.Send(payload);
        (void)client.Recv();  // structured error (or close) — either is fine
        break;
      }
      case 2: {  // random declared length, no (or partial) payload
        const std::string header =
            Header(static_cast<std::uint32_t>(rng.NextU32()));
        (void)client.SendRaw(header.data(), header.size());
        break;
      }
      case 3: {  // mid-frame abort
        const std::string header = Header(rng.NextInt(8, 256));
        (void)client.SendRaw(header.data(), header.size());
        const std::string partial(rng.NextInt(1, 7), 'z');
        (void)client.SendRaw(partial.data(), partial.size());
        break;
      }
      case 4: {  // a valid query followed by garbage on the same stream
        (void)client.Send(ValidQuery(rng.NextInt(0, 31)));
        (void)client.Send("definitely not numbers");
        (void)client.Recv();
        (void)client.Recv();
        break;
      }
      default: {  // header split across two sends with a pause-free gap
        const std::string frame = EncodeFrame("!pin");  // near-miss admin
        (void)client.SendRaw(frame.data(), 2);
        (void)client.SendRaw(frame.data() + 2, frame.size() - 2);
        (void)client.Recv();
        break;
      }
    }
    client.CloseAbruptly();
    if (round % 10 == 9) ExpectStillServing(round % 32);
  }
  ExpectStillServing();
  EXPECT_GT(server_->Stats().protocol_errors, 0);
}

// --- slow-loris (its own fixture: the sweep needs idle_timeout_ms) ---

class SlowLorisTest : public ProtocolFuzzTest {
 protected:
  SlowLorisTest() { options_.idle_timeout_ms = 100.0; }
};

TEST_F(SlowLorisTest, StalledPartialFrameIsSweptClosed) {
  TestClient loris(server_->port());
  const std::string header = Header(64);
  ASSERT_TRUE(loris.SendRaw(header.data(), 2).ok());
  // Never send the rest: the idle sweep must reclaim the connection.
  const StatusOr<std::string> payload = loris.Recv();
  EXPECT_FALSE(payload.ok()) << *payload;
  ExpectStillServing();
}

TEST_F(SlowLorisTest, SlowButSteadyClientIsNotSwept) {
  // Dribble a valid frame one byte at a time — total transfer time far
  // exceeds idle_timeout_ms, but every byte makes progress, so the
  // sweep must leave the connection alone.
  TestClient client(server_->port());
  const std::string frame = EncodeFrame(ValidQuery());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    ASSERT_TRUE(client.SendRaw(frame.data() + i, 1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const StatusOr<std::string> payload = client.Recv();
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->label, bundle_.expected[0]);
}

TEST_F(SlowLorisTest, HealthyIdleConnectionSurvivesLongPredictions) {
  // An idle connection with no partial frame and nothing to flush is
  // healthy, not a loris: it must survive many sweep periods.
  TestClient client(server_->port());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const StatusOr<std::string> payload = client.Call(ValidQuery(1));
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(payload->rfind("ok ", 0), 0) << *payload;
}

}  // namespace
}  // namespace gbx
