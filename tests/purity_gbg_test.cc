#include "sampling/purity_gbg.h"

#include <set>

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, std::uint64_t seed) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 2;
  cfg.center_spread = 5.0;
  cfg.cluster_std = 0.8;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(PurityGbgTest, MembershipPartitionsDataset) {
  const Dataset ds = Blobs(300, 3, 1);
  const PurityGbgResult result = GeneratePurityGbg(ds, PurityGbgConfig{});
  std::set<int> covered;
  for (const GranularBall& ball : result.balls.balls()) {
    for (int idx : ball.members) {
      EXPECT_TRUE(covered.insert(idx).second);
    }
  }
  EXPECT_EQ(static_cast<int>(covered.size()), ds.size());
}

class PurityThresholdTest : public ::testing::TestWithParam<double> {};

TEST_P(PurityThresholdTest, EveryBallPureEnoughOrSmall) {
  const double threshold = GetParam();
  Dataset ds = Blobs(400, 3, 2);
  Pcg32 noise_rng(3);
  InjectClassNoise(&ds, 0.1, &noise_rng);
  PurityGbgConfig cfg;
  cfg.purity_threshold = threshold;
  const PurityGbgResult result = GeneratePurityGbg(ds, cfg);
  ASSERT_EQ(result.purities.size(),
            static_cast<std::size_t>(result.balls.size()));
  for (int i = 0; i < result.balls.size(); ++i) {
    const GranularBall& ball = result.balls.ball(i);
    const bool small = IsSmallBall(ball, ds.num_features());
    EXPECT_TRUE(result.purities[i] >= threshold || small)
        << "ball " << i << " purity " << result.purities[i] << " size "
        << ball.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PurityThresholdTest,
                         ::testing::Values(0.8, 0.9, 0.95, 1.0));

TEST(PurityGbgTest, ReportedPurityMatchesMembers) {
  const Dataset ds = Blobs(200, 2, 4);
  const PurityGbgResult result = GeneratePurityGbg(ds, PurityGbgConfig{});
  for (int i = 0; i < result.balls.size(); ++i) {
    const GranularBall& ball = result.balls.ball(i);
    int matching = 0;
    for (int idx : ball.members) {
      if (ds.label(idx) == ball.label) ++matching;
    }
    EXPECT_NEAR(result.purities[i],
                static_cast<double>(matching) / ball.size(), 1e-12);
  }
}

TEST(PurityGbgTest, ClassicRadiusIsAverageDistance) {
  const Dataset ds = Blobs(150, 2, 5);
  const PurityGbgResult result = GeneratePurityGbg(ds, PurityGbgConfig{});
  const Matrix& x = result.balls.scaled_features();
  for (const GranularBall& ball : result.balls.balls()) {
    double sum = 0.0;
    for (int idx : ball.members) {
      sum += EuclideanDistance(x.Row(idx), ball.center.data(), x.cols());
    }
    EXPECT_NEAR(ball.radius, sum / ball.size(), 1e-9);
    EXPECT_EQ(ball.center_index, -1);  // centroid, not a sample
  }
}

TEST(PurityGbgTest, ClassicBallsOverlapOnNoisyData) {
  // The motivating deficiency (§III): average-radius balls from k-division
  // overlap, while RD-GBG balls never do. On noisy data the overlap depth
  // over heterogeneous pairs is typically positive.
  Dataset ds = Blobs(400, 2, 6);
  Pcg32 noise_rng(7);
  InjectClassNoise(&ds, 0.2, &noise_rng);
  const PurityGbgResult result = GeneratePurityGbg(ds, PurityGbgConfig{});
  EXPECT_GT(result.balls.size(), 1);
  EXPECT_GE(result.balls.HeterogeneousOverlapDepth(), 0.0);
}

TEST(PurityGbgTest, DuplicatePointsTerminate) {
  // All-identical features with mixed labels can never be purified by
  // splitting; the degenerate-split guard must finalize instead of looping.
  Matrix x(20, 2, 1.0);
  std::vector<int> y(20);
  for (int i = 0; i < 20; ++i) y[i] = i % 2;
  const Dataset ds(std::move(x), std::move(y));
  const PurityGbgResult result = GeneratePurityGbg(ds, PurityGbgConfig{});
  EXPECT_GE(result.balls.size(), 1);
  EXPECT_EQ(result.balls.TotalCoveredSamples(), 20);
}

TEST(PurityGbgTest, Deterministic) {
  const Dataset ds = Blobs(250, 3, 8);
  PurityGbgConfig cfg;
  cfg.seed = 77;
  const PurityGbgResult a = GeneratePurityGbg(ds, cfg);
  const PurityGbgResult b = GeneratePurityGbg(ds, cfg);
  ASSERT_EQ(a.balls.size(), b.balls.size());
  for (int i = 0; i < a.balls.size(); ++i) {
    EXPECT_EQ(a.balls.ball(i).members, b.balls.ball(i).members);
  }
}

TEST(PurityGbgTest, SmallBallStopRule) {
  // A tiny dataset (n <= 2p) is never split regardless of purity.
  const Dataset ds(Matrix::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}}),
                   {0, 1, 0, 1});
  const PurityGbgResult result = GeneratePurityGbg(ds, PurityGbgConfig{});
  EXPECT_EQ(result.balls.size(), 1);
  EXPECT_EQ(result.balls.ball(0).size(), 4);
}

}  // namespace
}  // namespace gbx
