#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "ml/metrics.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, int features, std::uint64_t seed,
              double spread = 6.0, double std_dev = 1.0) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = features;
  cfg.center_spread = spread;
  cfg.cluster_std = std_dev;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(RandomForestTest, GeneralizesOnBlobs) {
  const Dataset all = Blobs(600, 3, 6, 1);
  Pcg32 split_rng(2);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  RandomForestConfig cfg;
  cfg.num_trees = 30;
  RandomForestClassifier rf(cfg);
  Pcg32 rng(3);
  rf.Fit(split.train, &rng);
  EXPECT_GT(Accuracy(split.test.y(), rf.PredictBatch(split.test.x())), 0.93);
}

TEST(RandomForestTest, DeterministicAcrossThreadCounts) {
  const Dataset ds = Blobs(200, 2, 4, 4);
  RandomForestConfig cfg1;
  cfg1.num_trees = 16;
  cfg1.num_threads = 1;
  RandomForestConfig cfg8 = cfg1;
  cfg8.num_threads = 8;
  RandomForestClassifier rf1(cfg1);
  RandomForestClassifier rf8(cfg8);
  Pcg32 rng1(5);
  Pcg32 rng8(5);
  rf1.Fit(ds, &rng1);
  rf8.Fit(ds, &rng8);
  EXPECT_EQ(rf1.PredictBatch(ds.x()), rf8.PredictBatch(ds.x()));
}

TEST(RandomForestTest, MoreTreesAtLeastAsGoodOnNoisyData) {
  // Weak sanity property: a 50-tree forest should not be much worse than a
  // 2-tree forest on overlapping data.
  const Dataset all = Blobs(800, 2, 5, 6, /*spread=*/2.0, /*std_dev=*/1.5);
  Pcg32 split_rng(7);
  const TrainTestSplitResult split = TrainTestSplit(all, 0.3, &split_rng);
  RandomForestConfig small_cfg;
  small_cfg.num_trees = 2;
  RandomForestConfig big_cfg;
  big_cfg.num_trees = 50;
  RandomForestClassifier small_rf(small_cfg);
  RandomForestClassifier big_rf(big_cfg);
  Pcg32 rng_a(8);
  Pcg32 rng_b(8);
  small_rf.Fit(split.train, &rng_a);
  big_rf.Fit(split.train, &rng_b);
  const double small_acc =
      Accuracy(split.test.y(), small_rf.PredictBatch(split.test.x()));
  const double big_acc =
      Accuracy(split.test.y(), big_rf.PredictBatch(split.test.x()));
  EXPECT_GE(big_acc, small_acc - 0.03);
}

TEST(RandomForestTest, ReportsTreeCount) {
  const Dataset ds = Blobs(100, 2, 3, 9);
  RandomForestConfig cfg;
  cfg.num_trees = 7;
  RandomForestClassifier rf(cfg);
  Pcg32 rng(10);
  rf.Fit(ds, &rng);
  EXPECT_EQ(rf.num_trees(), 7);
}

TEST(RandomForestTest, WithoutBootstrapStillWorks) {
  const Dataset ds = Blobs(200, 2, 4, 11);
  RandomForestConfig cfg;
  cfg.num_trees = 10;
  cfg.bootstrap = false;
  RandomForestClassifier rf(cfg);
  Pcg32 rng(12);
  rf.Fit(ds, &rng);
  EXPECT_GT(Accuracy(ds.y(), rf.PredictBatch(ds.x())), 0.97);
}

TEST(RandomForestTest, PredictionsInLabelRange) {
  const Dataset ds = Blobs(150, 4, 3, 13);
  RandomForestConfig cfg;
  cfg.num_trees = 12;
  RandomForestClassifier rf(cfg);
  Pcg32 rng(14);
  rf.Fit(ds, &rng);
  for (int pred : rf.PredictBatch(ds.x())) {
    EXPECT_GE(pred, 0);
    EXPECT_LT(pred, 4);
  }
}

}  // namespace
}  // namespace gbx
