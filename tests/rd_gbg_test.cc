#include "core/rd_gbg.h"

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/paper_suite.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

Dataset Blobs(int n, int classes, std::uint64_t seed, double spread = 5.0,
              double std_dev = 0.8) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 2;
  cfg.center_spread = spread;
  cfg.cluster_std = std_dev;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

// Core invariants of RD-GBG (§IV-B): purity 1.0, geometric containment,
// no overlap, disjoint membership, and completeness (every sample is
// either covered or eliminated as noise). Swept across datasets, seeds
// and density tolerances.
class RdGbgInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RdGbgInvariantTest, AllInvariantsHold) {
  const auto [n, rho, seed] = GetParam();
  const Dataset ds = Blobs(n, 3, seed);
  RdGbgConfig cfg;
  cfg.density_tolerance = rho;
  cfg.seed = seed * 1000 + 7;
  const RdGbgResult result = GenerateRdGbg(ds, cfg);

  EXPECT_TRUE(result.balls.CheckPurity(ds.y()));
  EXPECT_TRUE(result.balls.CheckContainment());
  EXPECT_TRUE(result.balls.CheckNonOverlap(1e-9));
  EXPECT_TRUE(result.balls.CheckDisjointMembership(ds.size()));
  EXPECT_DOUBLE_EQ(result.balls.HeterogeneousOverlapDepth(), 0.0);

  // Completeness: covered + noise partitions the dataset.
  std::set<int> covered;
  for (const GranularBall& ball : result.balls.balls()) {
    covered.insert(ball.members.begin(), ball.members.end());
  }
  for (int idx : result.noise_indices) {
    EXPECT_EQ(covered.count(idx), 0u);
    covered.insert(idx);
  }
  EXPECT_EQ(static_cast<int>(covered.size()), ds.size());
}

TEST_P(RdGbgInvariantTest, CentersAreSamplesWithBallLabel) {
  const auto [n, rho, seed] = GetParam();
  const Dataset ds = Blobs(n, 3, seed + 100);
  RdGbgConfig cfg;
  cfg.density_tolerance = rho;
  const RdGbgResult result = GenerateRdGbg(ds, cfg);
  for (const GranularBall& ball : result.balls.balls()) {
    ASSERT_GE(ball.center_index, 0);
    EXPECT_EQ(ds.label(ball.center_index), ball.label);
    // Center coordinates equal the (scaled) sample coordinates.
    const double* sx = result.balls.scaled_features().Row(ball.center_index);
    for (int j = 0; j < ds.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(ball.center[j], sx[j]);
    }
    // The center is a member of its own ball.
    EXPECT_TRUE(std::binary_search(ball.members.begin(), ball.members.end(),
                                   ball.center_index));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RdGbgInvariantTest,
    ::testing::Combine(::testing::Values(60, 200, 500),
                       ::testing::Values(3, 5, 9),
                       ::testing::Values(1, 2)));

// The same invariants must hold on every generator family of the paper
// suite (banana, overlapping blobs, extreme-imbalance blobs, high-dim
// informative, many-class high-dim).
class RdGbgPaperSuiteTest : public ::testing::TestWithParam<int> {};

TEST_P(RdGbgPaperSuiteTest, InvariantsOnPaperDatasets) {
  const int index = GetParam();
  const Dataset ds = MakePaperDataset(index, /*max_samples=*/220,
                                      /*seed=*/55 + index);
  const RdGbgResult result = GenerateRdGbg(ds, RdGbgConfig{});
  EXPECT_TRUE(result.balls.CheckPurity(ds.y()));
  EXPECT_TRUE(result.balls.CheckContainment());
  EXPECT_TRUE(result.balls.CheckNonOverlap(1e-9));
  EXPECT_TRUE(result.balls.CheckDisjointMembership(ds.size()));
  EXPECT_EQ(result.balls.TotalCoveredSamples() +
                static_cast<int>(result.noise_indices.size()),
            ds.size());
}

INSTANTIATE_TEST_SUITE_P(AllPaperDatasets, RdGbgPaperSuiteTest,
                         ::testing::Range(0, 13));

TEST(RdGbgTest, Deterministic) {
  const Dataset ds = Blobs(200, 2, 5);
  RdGbgConfig cfg;
  cfg.seed = 99;
  const RdGbgResult a = GenerateRdGbg(ds, cfg);
  const RdGbgResult b = GenerateRdGbg(ds, cfg);
  ASSERT_EQ(a.balls.size(), b.balls.size());
  for (int i = 0; i < a.balls.size(); ++i) {
    EXPECT_EQ(a.balls.ball(i).members, b.balls.ball(i).members);
    EXPECT_DOUBLE_EQ(a.balls.ball(i).radius, b.balls.ball(i).radius);
  }
  EXPECT_EQ(a.noise_indices, b.noise_indices);
}

TEST(RdGbgTest, DifferentSeedsUsuallyDiffer) {
  const Dataset ds = Blobs(300, 2, 6);
  RdGbgConfig cfg_a;
  cfg_a.seed = 1;
  RdGbgConfig cfg_b;
  cfg_b.seed = 2;
  const RdGbgResult a = GenerateRdGbg(ds, cfg_a);
  const RdGbgResult b = GenerateRdGbg(ds, cfg_b);
  const bool same_count = a.balls.size() == b.balls.size();
  bool identical = same_count;
  if (same_count) {
    for (int i = 0; i < a.balls.size() && identical; ++i) {
      identical = a.balls.ball(i).members == b.balls.ball(i).members;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(RdGbgTest, SingleClassProducesOneBigBallEventually) {
  // With one class there is no heterogeneous sample: the first center's
  // locally consistent radius spans the whole undivided set.
  BlobsConfig cfg;
  cfg.num_samples = 100;
  cfg.num_classes = 1;
  Pcg32 rng(7);
  const Dataset ds = MakeGaussianBlobs(cfg, &rng);
  const RdGbgResult result = GenerateRdGbg(ds, RdGbgConfig{});
  EXPECT_TRUE(result.noise_indices.empty());
  EXPECT_EQ(result.balls.TotalCoveredSamples(), 100);
  // Few balls: the diffusion covers nearly everything in one or two rounds.
  EXPECT_LE(result.balls.size(), 5);
}

TEST(RdGbgTest, DetectsPlantedNoise) {
  // Two far-apart compact blobs; flip a handful of labels deep inside each
  // blob. RD-GBG's center detection should eliminate a good share of them.
  const Dataset clean = Blobs(400, 2, 8, /*spread=*/10.0, /*std_dev=*/0.5);
  Dataset noisy = clean;
  Pcg32 noise_rng(9);
  const std::vector<int> flipped = InjectClassNoise(&noisy, 0.05, &noise_rng);
  ASSERT_FALSE(flipped.empty());

  const RdGbgResult result = GenerateRdGbg(noisy, RdGbgConfig{});
  // All detected noise must be genuinely flipped samples (no false
  // positives on this clean geometry)...
  int true_hits = 0;
  for (int idx : result.noise_indices) {
    if (std::binary_search(flipped.begin(), flipped.end(), idx)) ++true_hits;
  }
  EXPECT_EQ(true_hits, static_cast<int>(result.noise_indices.size()));
  // ...and a decent share of the planted noise is caught.
  EXPECT_GE(true_hits, static_cast<int>(flipped.size()) / 4);
}

TEST(RdGbgTest, BallsHoldManySamplesOnSeparableData) {
  const Dataset ds = Blobs(500, 2, 10, /*spread=*/10.0, /*std_dev=*/0.5);
  const RdGbgResult result = GenerateRdGbg(ds, RdGbgConfig{});
  // Representativeness: the granulation compresses the dataset.
  EXPECT_LT(result.balls.size(), ds.size() / 4);
}

TEST(RdGbgTest, OrphansAreRadiusZeroSingletons) {
  const Dataset ds = Blobs(300, 3, 11, /*spread=*/2.0, /*std_dev=*/1.5);
  const RdGbgResult result = GenerateRdGbg(ds, RdGbgConfig{});
  std::set<int> orphan_set(result.orphan_indices.begin(),
                           result.orphan_indices.end());
  int orphan_balls = 0;
  for (const GranularBall& ball : result.balls.balls()) {
    if (orphan_set.count(ball.center_index) > 0 && ball.size() == 1) {
      EXPECT_DOUBLE_EQ(ball.radius, 0.0);
      ++orphan_balls;
    }
  }
  EXPECT_EQ(orphan_balls, static_cast<int>(result.orphan_indices.size()));
}

TEST(RdGbgTest, RhoIsValidated) {
  const Dataset ds = Blobs(20, 2, 12);
  RdGbgConfig cfg;
  cfg.density_tolerance = 1;
  EXPECT_DEATH(GenerateRdGbg(ds, cfg), "GBX_CHECK");
}

TEST(RdGbgTest, TinyDataset) {
  const Dataset ds(Matrix::FromRows({{0, 0}, {0.1, 0}, {5, 5}, {5.1, 5}}),
                   {0, 0, 1, 1});
  const RdGbgResult result = GenerateRdGbg(ds, RdGbgConfig{});
  EXPECT_TRUE(result.balls.CheckPurity(ds.y()));
  EXPECT_EQ(result.balls.TotalCoveredSamples() +
                static_cast<int>(result.noise_indices.size()),
            4);
}

TEST(RdGbgTest, UnscaledModeKeepsOriginalCoordinates) {
  const Dataset ds = Blobs(100, 2, 13);
  RdGbgConfig cfg;
  cfg.scale_features = false;
  const RdGbgResult result = GenerateRdGbg(ds, cfg);
  EXPECT_TRUE(result.balls.CheckPurity(ds.y()));
  const GranularBall& ball = result.balls.ball(0);
  for (int j = 0; j < ds.num_features(); ++j) {
    EXPECT_DOUBLE_EQ(ball.center[j], ds.feature(ball.center_index, j));
  }
}

}  // namespace
}  // namespace gbx
