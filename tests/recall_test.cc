// The kSampled tier's recall knob, measured against the exact scan.
// Everything here is fully deterministic — seeded data, seeded
// granulation, seeded candidate permutation — so the assertions are
// exact reproducibility checks, not statistical ones:
//   * recall 1.0 is bit-identical to kFlat (same (score, index) pairs,
//     same predictions),
//   * per-query recall is monotone nondecreasing in the knob (the
//     permutation prefixes nest, and nothing ranked above an exact
//     top-k member can sit outside the exact top-k, so growing the
//     candidate set never evicts a recovered neighbor),
//   * measured average recall at knob r stays >= r (the prefix is a
//     uniform sample of ceil(r * m) of the m balls),
//   * the tier is opt-in: kAuto never resolves to it.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rd_gbg.h"
#include "data/paper_suite.h"
#include "index/index_strategy.h"
#include "ml/gb_knn.h"

namespace gbx {
namespace {

constexpr int kTopK = 5;
const double kKnobs[] = {0.5, 0.9, 0.99, 1.0};

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

struct RecallCase {
  GbKnnClassifier exact;    // kFlat reference
  GbKnnClassifier sampled;  // same fitted model, kSampled backend
  Dataset queries;
};

RecallCase MakeCase(const std::string& dataset_id, std::uint64_t seed) {
  RdGbgConfig gbg;
  gbg.seed = seed;
  gbg.index_strategy = IndexStrategy::kFlat;
  RecallCase c{GbKnnClassifier(gbg, /*k=*/kTopK),
               GbKnnClassifier(gbg, /*k=*/kTopK),
               MakePaperDataset(dataset_id, 300, seed + 1)};
  const Dataset train = MakePaperDataset(dataset_id, 900, seed);
  Pcg32 rng_a(7), rng_b(7);
  c.exact.Fit(train, &rng_a);
  c.sampled.Fit(train, &rng_b);
  // Identical training (the tier never changes granulation); only the
  // inference backend differs.
  c.sampled.set_index_strategy(IndexStrategy::kSampled);
  EXPECT_EQ(c.exact.resolved_index_strategy(), IndexStrategy::kFlat);
  EXPECT_EQ(c.sampled.resolved_index_strategy(), IndexStrategy::kSampled);
  EXPECT_EQ(c.sampled.num_balls(), c.exact.num_balls());
  return c;
}

/// |sampled top-k ∩ exact top-k| for one query.
int Recovered(const std::vector<std::pair<double, int>>& exact,
              const std::vector<std::pair<double, int>>& sampled) {
  std::set<int> exact_ids;
  for (const auto& [score, ball] : exact) exact_ids.insert(ball);
  int hit = 0;
  for (const auto& [score, ball] : sampled) hit += exact_ids.count(ball);
  return hit;
}

class RecallKnobTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RecallKnobTest, FullRecallIsBitIdenticalToFlat) {
  RecallCase c = MakeCase(GetParam(), 42);
  ASSERT_DOUBLE_EQ(c.sampled.recall_target(), 1.0);
  for (int i = 0; i < c.queries.size(); ++i) {
    const auto exact = c.exact.TopScoredBalls(c.queries.row(i), kTopK);
    const auto sampled = c.sampled.TopScoredBalls(c.queries.row(i), kTopK);
    ASSERT_EQ(exact.size(), sampled.size()) << "query " << i;
    for (std::size_t j = 0; j < exact.size(); ++j) {
      ASSERT_EQ(exact[j].second, sampled[j].second) << "query " << i;
      ASSERT_EQ(Bits(exact[j].first), Bits(sampled[j].first)) << "query " << i;
    }
  }
  ASSERT_EQ(c.sampled.PredictBatch(c.queries.x()),
            c.exact.PredictBatch(c.queries.x()));
}

TEST_P(RecallKnobTest, RecallMonotoneInKnobAndAboveTarget) {
  RecallCase c = MakeCase(GetParam(), 43);
  const int nq = c.queries.size();
  std::vector<std::vector<int>> recovered;  // [knob][query]
  for (double knob : kKnobs) {
    c.sampled.set_recall_target(knob);
    ASSERT_DOUBLE_EQ(c.sampled.recall_target(), knob);
    std::vector<int> per_query(nq);
    int total = 0, denom = 0;
    for (int i = 0; i < nq; ++i) {
      const auto exact = c.exact.TopScoredBalls(c.queries.row(i), kTopK);
      const auto sampled = c.sampled.TopScoredBalls(c.queries.row(i), kTopK);
      per_query[i] = Recovered(exact, sampled);
      total += per_query[i];
      denom += static_cast<int>(exact.size());
    }
    const double measured = static_cast<double>(total) / denom;
    // A uniform ceil(knob * m) candidate sample recovers each exact
    // neighbor with probability >= knob — in expectation. The one fixed
    // permutation is shared by every query, so the realized average is
    // a correlated draw around that target; everything is seeded, so
    // the value is reproducible and a small slack makes the assertion
    // exact-stable while still pinning the knob's meaning.
    EXPECT_GE(measured, knob - 0.08) << "knob=" << knob;
    EXPECT_LE(measured, 1.0) << "knob=" << knob;
    recovered.push_back(std::move(per_query));
  }
  // Nested prefixes: raising the knob can only add candidates, and an
  // added candidate never evicts a recovered exact neighbor.
  for (std::size_t l = 1; l < recovered.size(); ++l) {
    for (int i = 0; i < nq; ++i) {
      EXPECT_GE(recovered[l][i], recovered[l - 1][i])
          << "query " << i << " knob " << kKnobs[l - 1] << " -> " << kKnobs[l];
    }
  }
  // And the top knob is exact: every query recovers all kTopK.
  for (int i = 0; i < nq; ++i) {
    EXPECT_EQ(recovered.back()[i],
              std::min(kTopK, c.exact.num_balls()))
        << "query " << i;
  }
}

TEST_P(RecallKnobTest, RepeatedBuildsGiveIdenticalSampledResults) {
  // The candidate permutation is keyed on the ball count alone, so two
  // independently trained copies of the same model agree query for
  // query even below full recall — the property that makes a sampled
  // replica fleet serve consistent answers.
  RecallCase a = MakeCase(GetParam(), 44);
  RecallCase b = MakeCase(GetParam(), 44);
  for (double knob : {0.5, 0.9}) {
    a.sampled.set_recall_target(knob);
    b.sampled.set_recall_target(knob);
    ASSERT_EQ(a.sampled.PredictBatch(a.queries.x()),
              b.sampled.PredictBatch(a.queries.x()))
        << "knob=" << knob;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSuite, RecallKnobTest,
                         ::testing::Values("S2", "S5", "S8"));

TEST(RecallKnobTest, AutoNeverResolvesToSampled) {
  // The tier is opt-in: size-based auto-resolution may pick flat or a
  // tree, never an approximate backend.
  RdGbgConfig gbg;
  gbg.seed = 9;
  gbg.index_strategy = IndexStrategy::kAuto;
  GbKnnClassifier clf(gbg, 3);
  Pcg32 rng(5);
  clf.Fit(MakePaperDataset("S5", 600, 11), &rng);
  EXPECT_NE(clf.resolved_index_strategy(), IndexStrategy::kSampled);
}

TEST(RecallKnobTest, KnobFloorNeverDropsBelowK) {
  // Tiny recall on a small model: the scan still covers at least k
  // candidates, so TopScoredBalls always returns k pairs.
  RdGbgConfig gbg;
  gbg.seed = 10;
  gbg.index_strategy = IndexStrategy::kSampled;
  GbKnnClassifier clf(gbg, kTopK);
  Pcg32 rng(6);
  clf.Fit(MakePaperDataset("S2", 400, 12), &rng);
  clf.set_recall_target(0.01);
  const Dataset queries = MakePaperDataset("S2", 50, 13);
  for (int i = 0; i < queries.size(); ++i) {
    const auto top = clf.TopScoredBalls(queries.row(i), kTopK);
    EXPECT_EQ(static_cast<int>(top.size()),
              std::min(kTopK, clf.num_balls()));
    for (std::size_t j = 1; j < top.size(); ++j) {
      EXPECT_LE(top[j - 1], top[j]) << "pairs must stay sorted";
    }
  }
}

}  // namespace
}  // namespace gbx
