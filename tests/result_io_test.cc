#include "exp/result_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace gbx {
namespace {

EvalResult MakeResult() {
  EvalResult r;
  r.request.dataset_index = 4;  // S5
  r.request.noise_ratio = 0.2;
  r.request.sampler = SamplerKind::kGbabs;
  r.request.classifier = ClassifierKind::kDecisionTree;
  r.mean_accuracy = 0.875;
  r.mean_gmean = 0.81;
  r.mean_sampling_ratio = 0.3;
  r.fold_accuracies = {0.85, 0.9};
  return r;
}

TEST(ResultIoTest, CsvContainsHeaderAndRow) {
  const std::string csv = ResultsToCsv({MakeResult()});
  std::stringstream ss(csv);
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(ss, header));
  ASSERT_TRUE(std::getline(ss, row));
  EXPECT_NE(header.find("mean_accuracy"), std::string::npos);
  EXPECT_NE(row.find("S5,0.2,GBABS,DT,0.875,0.81,0.3,0.85;0.9"),
            std::string::npos);
}

TEST(ResultIoTest, EmptyResultsHeaderOnly) {
  const std::string csv = ResultsToCsv({});
  EXPECT_EQ(csv.find('\n'), csv.size() - 1);  // exactly one line
}

TEST(ResultIoTest, UnknownDatasetIndexFallsBackToNumber) {
  EvalResult r = MakeResult();
  r.request.dataset_index = 99;
  const std::string csv = ResultsToCsv({r});
  EXPECT_NE(csv.find("\n99,"), std::string::npos);
}

TEST(ResultIoTest, SaveWritesFile) {
  const std::string path = ::testing::TempDir() + "/gbx_results.csv";
  ASSERT_TRUE(SaveResultsCsv({MakeResult(), MakeResult()}, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);  // header + 2 rows
  std::remove(path.c_str());
}

TEST(ResultIoTest, SaveToBadPathFails) {
  EXPECT_FALSE(SaveResultsCsv({}, "/no/such/dir/x.csv").ok());
}

}  // namespace
}  // namespace gbx
