#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, DifferentStreamsDiffer) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Pcg32Test, NextBoundedStaysInRange) {
  Pcg32 rng(9);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 4294967295u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Pcg32Test, NextBoundedIsRoughlyUniform) {
  Pcg32 rng(11);
  const int kBound = 10;
  const int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBound, kDraws / kBound * 0.1);
  }
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32Test, NextIntCoversInclusiveRange) {
  Pcg32 rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Pcg32Test, NextIntSingleton) {
  Pcg32 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(7, 7), 7);
}

TEST(Pcg32Test, GaussianMoments) {
  Pcg32 rng(17);
  const int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);
}

TEST(Pcg32Test, ShufflePreservesElements) {
  Pcg32 rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Pcg32Test, SampleWithoutReplacementDistinct) {
  Pcg32 rng(29);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int idx : sample) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 50);
  }
}

TEST(Pcg32Test, SampleWithoutReplacementFull) {
  Pcg32 rng(31);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Pcg32Test, SampleWithoutReplacementEmpty) {
  Pcg32 rng(37);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
}

// Each draw count must hit each index with roughly uniform probability.
TEST(Pcg32Test, SampleWithoutReplacementUnbiased) {
  Pcg32 rng(41);
  std::vector<int> hits(10, 0);
  const int kRounds = 20000;
  for (int r = 0; r < kRounds; ++r) {
    for (int idx : rng.SampleWithoutReplacement(10, 3)) ++hits[idx];
  }
  for (int h : hits) {
    EXPECT_NEAR(h, kRounds * 3 / 10, kRounds * 3 / 10 * 0.1);
  }
}

}  // namespace
}  // namespace gbx
