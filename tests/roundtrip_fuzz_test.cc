// Randomized round-trip properties for the persistence layers: arbitrary
// datasets through CSV, arbitrary granulations through the granular-ball
// format. TEST_P over seeds gives independent random instances.
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/gb_io.h"
#include "core/rd_gbg.h"
#include "data/csv.h"
#include "data/synthetic.h"

namespace gbx {
namespace {

class RoundTripFuzzTest : public ::testing::TestWithParam<int> {};

Dataset RandomDataset(std::uint64_t seed) {
  Pcg32 rng(seed);
  const int n = 20 + static_cast<int>(rng.NextBounded(200));
  const int p = 1 + static_cast<int>(rng.NextBounded(12));
  const int q = 2 + static_cast<int>(rng.NextBounded(4));
  Matrix x(n, p);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) {
      // Mix of scales and signs, including exact zeros and tiny values.
      const double magnitude =
          std::pow(10.0, rng.NextInt(-8, 8)) * rng.NextGaussian();
      x.At(i, j) = rng.NextBounded(20) == 0 ? 0.0 : magnitude;
    }
    y[i] = static_cast<int>(rng.NextBounded(q));
  }
  // Ensure at least two classes so downstream code paths stay generic.
  y[0] = 0;
  y[1] = 1;
  return Dataset(std::move(x), std::move(y));
}

TEST_P(RoundTripFuzzTest, CsvRoundTripIsExact) {
  const Dataset original = RandomDataset(1000 + GetParam());
  const std::string path = ::testing::TempDir() + "/gbx_fuzz_" +
                           std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(SaveCsv(original, path).ok());
  const StatusOr<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->num_features(), original.num_features());
  for (int i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded->label(i), original.label(i));
    for (int j = 0; j < original.num_features(); ++j) {
      // %.17g text is lossless for doubles.
      ASSERT_DOUBLE_EQ(loaded->feature(i, j), original.feature(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST_P(RoundTripFuzzTest, GranularBallRoundTripPreservesInvariants) {
  const Dataset ds = RandomDataset(2000 + GetParam());
  RdGbgConfig cfg;
  cfg.seed = 3000 + GetParam();
  const RdGbgResult generated = GenerateRdGbg(ds, cfg);
  const StatusOr<GranularBallSet> loaded =
      GranularBallsFromString(GranularBallsToString(generated.balls));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), generated.balls.size());
  EXPECT_TRUE(loaded->CheckPurity(ds.y()));
  EXPECT_TRUE(loaded->CheckContainment());
  EXPECT_TRUE(loaded->CheckNonOverlap(1e-9));
  EXPECT_TRUE(loaded->CheckDisjointMembership(ds.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace gbx
