// Randomized round-trip properties for the persistence layers: arbitrary
// datasets through CSV, arbitrary granulations through the granular-ball
// format, and fitted classifiers through the gbx-model format — plus
// corruption robustness: truncated or bit-flipped artifacts must come
// back as a clean error Status (or, for the checksum-free ball format, a
// still-well-formed set), never UB or a crash. TEST_P over seeds gives
// independent random instances.
#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/gb_io.h"
#include "core/rd_gbg.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "ml/gb_knn.h"
#include "ml/knn.h"
#include "serve/model_io.h"
#include "simd/simd.h"

namespace gbx {
namespace {

class RoundTripFuzzTest : public ::testing::TestWithParam<int> {};

Dataset RandomDataset(std::uint64_t seed) {
  Pcg32 rng(seed);
  const int n = 20 + static_cast<int>(rng.NextBounded(200));
  const int p = 1 + static_cast<int>(rng.NextBounded(12));
  const int q = 2 + static_cast<int>(rng.NextBounded(4));
  Matrix x(n, p);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < p; ++j) {
      // Mix of scales and signs, including exact zeros and tiny values.
      const double magnitude =
          std::pow(10.0, rng.NextInt(-8, 8)) * rng.NextGaussian();
      x.At(i, j) = rng.NextBounded(20) == 0 ? 0.0 : magnitude;
    }
    y[i] = static_cast<int>(rng.NextBounded(q));
  }
  // Ensure at least two classes so downstream code paths stay generic.
  y[0] = 0;
  y[1] = 1;
  return Dataset(std::move(x), std::move(y));
}

TEST_P(RoundTripFuzzTest, CsvRoundTripIsExact) {
  const Dataset original = RandomDataset(1000 + GetParam());
  const std::string path = ::testing::TempDir() + "/gbx_fuzz_" +
                           std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(SaveCsv(original, path).ok());
  const StatusOr<Dataset> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->num_features(), original.num_features());
  for (int i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded->label(i), original.label(i));
    for (int j = 0; j < original.num_features(); ++j) {
      // %.17g text is lossless for doubles.
      ASSERT_DOUBLE_EQ(loaded->feature(i, j), original.feature(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST_P(RoundTripFuzzTest, GranularBallRoundTripPreservesInvariants) {
  const Dataset ds = RandomDataset(2000 + GetParam());
  RdGbgConfig cfg;
  cfg.seed = 3000 + GetParam();
  const RdGbgResult generated = GenerateRdGbg(ds, cfg);
  const StatusOr<GranularBallSet> loaded =
      GranularBallsFromString(GranularBallsToString(generated.balls));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), generated.balls.size());
  EXPECT_TRUE(loaded->CheckPurity(ds.y()));
  EXPECT_TRUE(loaded->CheckContainment());
  EXPECT_TRUE(loaded->CheckNonOverlap(1e-9));
  EXPECT_TRUE(loaded->CheckDisjointMembership(ds.size()));
}

// Flips one character to a different printable character.
std::string FlipByte(std::string text, std::size_t pos, Pcg32* rng) {
  char replacement;
  do {
    replacement = static_cast<char>('!' + rng->NextBounded(94));
  } while (replacement == text[pos]);
  text[pos] = replacement;
  return text;
}

TEST_P(RoundTripFuzzTest, CorruptedGranularBallsNeverCrash) {
  const Dataset ds = RandomDataset(4000 + GetParam());
  RdGbgConfig cfg;
  cfg.seed = 4500 + GetParam();
  const std::string text = GranularBallsToString(GenerateRdGbg(ds, cfg).balls);
  Pcg32 rng(4600 + GetParam());

  // The ball format carries no checksum, so a corrupted artifact may
  // still parse; the contract is a descriptive Status or a structurally
  // sound set (indices in range, finite geometry), never UB.
  for (int trial = 0; trial < 24; ++trial) {
    const bool truncate = trial % 2 == 0;
    const std::string corrupt =
        truncate ? text.substr(0, rng.NextBounded(
                                      static_cast<std::uint32_t>(text.size())))
                 : FlipByte(text, rng.NextBounded(static_cast<std::uint32_t>(
                                      text.size())),
                            &rng);
    const StatusOr<GranularBallSet> loaded = GranularBallsFromString(corrupt);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
      continue;
    }
    // Parsed despite corruption: every index the parser admitted must be
    // safe to traverse.
    for (const GranularBall& ball : loaded->balls()) {
      EXPECT_GE(ball.radius, 0.0);
      for (double c : ball.center) EXPECT_TRUE(std::isfinite(c));
      for (int m : ball.members) {
        EXPECT_GE(m, 0);
        EXPECT_LT(m, loaded->scaled_features().rows());
      }
    }
    loaded->CheckContainment();
    loaded->CheckNonOverlap();
    loaded->CheckDisjointMembership(loaded->scaled_features().rows());
  }
}

TEST_P(RoundTripFuzzTest, ModelRoundTripIsExactAndCorruptionIsRejected) {
  const Dataset ds = RandomDataset(5000 + GetParam());
  KnnClassifier model(1 + GetParam() % 5);
  Pcg32 fit_rng(1);
  model.Fit(ds, &fit_rng);
  const std::string text = ModelToString(model);

  // Clean round trip restores the exact training set.
  const StatusOr<LoadedModel> loaded = ModelFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->classifier->PredictBatch(ds.x()),
            model.PredictBatch(ds.x()));

  // The model format is checksummed: any strict truncation or byte flip
  // must be rejected (not merely tolerated).
  Pcg32 rng(5600 + GetParam());
  for (int trial = 0; trial < 24; ++trial) {
    std::string corrupt;
    if (trial % 2 == 0) {
      // Keep at least one byte off the end so the artifact really is
      // damaged (the final newline is load-bearing for the checksum
      // line's hex token, cut anywhere before it).
      corrupt = text.substr(
          0, rng.NextBounded(static_cast<std::uint32_t>(text.size() - 1)));
    } else {
      corrupt = FlipByte(
          text, rng.NextBounded(static_cast<std::uint32_t>(text.size())),
          &rng);
    }
    const StatusOr<LoadedModel> bad = ModelFromString(corrupt);
    EXPECT_FALSE(bad.ok()) << "corrupted artifact (trial " << trial
                           << ") parsed";
    if (!bad.ok()) {
      EXPECT_FALSE(bad.status().message().empty());
    }
  }
}

// The index-strategy knob is runtime state, never persisted: a gbx-model
// artifact saved from a tree-strategy GB-kNN must be byte-identical to
// one saved from a flat-strategy fit, and must load and predict
// bit-identically in a process that serves it with the flat strategy
// (and vice versa).
TEST_P(RoundTripFuzzTest, GbKnnArtifactIsIndexStrategyAgnostic) {
  const Dataset ds = RandomDataset(6000 + GetParam());
  RdGbgConfig gbg;
  gbg.seed = 6500 + GetParam();
  gbg.index_strategy = IndexStrategy::kTree;
  GbKnnClassifier tree_model(gbg, 1 + GetParam() % 4);
  Pcg32 fit_rng_tree(2);
  tree_model.Fit(ds, &fit_rng_tree);
  ASSERT_EQ(tree_model.resolved_index_strategy(), IndexStrategy::kTree);

  gbg.index_strategy = IndexStrategy::kFlat;
  GbKnnClassifier flat_model(gbg, 1 + GetParam() % 4);
  Pcg32 fit_rng_flat(2);
  flat_model.Fit(ds, &fit_rng_flat);

  // Same granulation, same artifact — the strategy never reaches disk.
  const std::string text = ModelToString(tree_model);
  ASSERT_EQ(text, ModelToString(flat_model));

  // Serve the tree-trained artifact with the flat strategy ...
  const StatusOr<LoadedModel> loaded = ModelFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* restored = dynamic_cast<GbKnnClassifier*>(loaded->classifier.get());
  ASSERT_NE(restored, nullptr);
  restored->set_index_strategy(IndexStrategy::kFlat);
  const std::vector<int> expected = tree_model.PredictBatch(ds.x());
  EXPECT_EQ(restored->PredictBatch(ds.x()), expected);

  // ... and with each tree backend; predictions stay bit-identical.
  restored->set_index_strategy(IndexStrategy::kTree);
  ASSERT_EQ(restored->resolved_index_strategy(), IndexStrategy::kTree);
  EXPECT_EQ(restored->PredictBatch(ds.x()), expected);
  restored->set_index_strategy(IndexStrategy::kBallTree);
  ASSERT_EQ(restored->resolved_index_strategy(), IndexStrategy::kBallTree);
  EXPECT_EQ(restored->PredictBatch(ds.x()), expected);

  // A ball-tree-strategy fit writes the same bytes too.
  gbg.index_strategy = IndexStrategy::kBallTree;
  GbKnnClassifier ball_model(gbg, 1 + GetParam() % 4);
  Pcg32 fit_rng_ball(2);
  ball_model.Fit(ds, &fit_rng_ball);
  ASSERT_EQ(ball_model.resolved_index_strategy(), IndexStrategy::kBallTree);
  EXPECT_EQ(ModelToString(ball_model), text);

  // The sampled tier as well: training under kSampled granulates
  // exactly (the tier only shapes inference), so the artifact bytes
  // match, and the restored model at recall 1.0 predicts bit-identically
  // to every exact backend.
  gbg.index_strategy = IndexStrategy::kSampled;
  GbKnnClassifier sampled_model(gbg, 1 + GetParam() % 4);
  Pcg32 fit_rng_sampled(2);
  sampled_model.Fit(ds, &fit_rng_sampled);
  ASSERT_EQ(sampled_model.resolved_index_strategy(), IndexStrategy::kSampled);
  EXPECT_EQ(ModelToString(sampled_model), text);
  restored->set_index_strategy(IndexStrategy::kSampled);
  ASSERT_EQ(restored->resolved_index_strategy(), IndexStrategy::kSampled);
  EXPECT_EQ(restored->PredictBatch(ds.x()), expected);
}

// The SIMD dispatch level is pure runtime state with a bit-exactness
// contract (src/simd/simd.h): an artifact trained under ANY dispatch
// level must be byte-identical to one trained under every other level
// the host supports, and a model restored from it must predict
// bit-identically whichever level serves it. This is what makes a
// heterogeneous fleet (AVX-512 trainers, AVX2 or scalar servers — or
// GBX_SIMD=scalar canaries) safe.
TEST_P(RoundTripFuzzTest, GbKnnArtifactIsSimdLevelAgnostic) {
  const Dataset ds = RandomDataset(7000 + GetParam());
  RdGbgConfig gbg;
  gbg.seed = 7500 + GetParam();

  struct PerLevel {
    simd::Level level;
    std::string artifact;
    std::vector<int> predictions;
  };
  std::vector<PerLevel> runs;
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kNeon,
                            simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (!simd::Supported(level)) continue;
    simd::SetLevelForTest(level);
    GbKnnClassifier model(gbg, 1 + GetParam() % 4);
    Pcg32 fit_rng(3);
    model.Fit(ds, &fit_rng);
    runs.push_back({level, ModelToString(model), model.PredictBatch(ds.x())});
  }
  simd::ReresolveFromEnvForTest();
  ASSERT_GE(runs.size(), 1u);  // scalar always runs

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].artifact, runs[0].artifact)
        << simd::LevelName(runs[i].level) << " vs "
        << simd::LevelName(runs[0].level);
    EXPECT_EQ(runs[i].predictions, runs[0].predictions)
        << simd::LevelName(runs[i].level);
  }

  // Cross-serve: restore the first level's artifact, predict under each
  // other level.
  const StatusOr<LoadedModel> loaded = ModelFromString(runs[0].artifact);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const PerLevel& run : runs) {
    simd::SetLevelForTest(run.level);
    EXPECT_EQ(loaded->classifier->PredictBatch(ds.x()), runs[0].predictions)
        << "served under " << simd::LevelName(run.level);
  }
  simd::ReresolveFromEnvForTest();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzzTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace gbx
