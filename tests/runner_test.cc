#include "exp/runner.h"

#include <atomic>

#include <gtest/gtest.h>

namespace gbx {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.max_samples = 300;
  cfg.cv_folds = 3;
  cfg.cv_repeats = 1;
  cfg.fast_classifiers = true;
  cfg.seed = 5;
  cfg.num_threads = 4;
  return cfg;
}

TEST(ExperimentConfigTest, FullModeExpands) {
  char prog[] = "test";
  char full[] = "--full";
  char* argv[] = {prog, full};
  const ExperimentConfig cfg = ExperimentConfig::FromArgs(2, argv);
  EXPECT_TRUE(cfg.full);
  EXPECT_LE(cfg.max_samples, 0);
  EXPECT_EQ(cfg.cv_repeats, 5);
  EXPECT_FALSE(cfg.fast_classifiers);
}

TEST(ExperimentConfigTest, FlagParsing) {
  char prog[] = "test";
  char seed_flag[] = "--seed";
  char seed_val[] = "42";
  char threads_flag[] = "--threads";
  char threads_val[] = "3";
  char* argv[] = {prog, seed_flag, seed_val, threads_flag, threads_val};
  const ExperimentConfig cfg = ExperimentConfig::FromArgs(5, argv);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.num_threads, 3);
  EXPECT_FALSE(cfg.full);
}

TEST(RunnerTest, LoadDatasetHonorsCap) {
  const ExperimentRunner runner(SmallConfig());
  const Dataset ds = runner.LoadDataset(4);  // S5 banana (5300 full)
  EXPECT_EQ(ds.size(), 300);
  EXPECT_EQ(ds.num_features(), 2);
}

TEST(RunnerTest, EvaluateProducesSaneMetrics) {
  const ExperimentRunner runner(SmallConfig());
  EvalRequest request;
  request.dataset_index = 4;  // S5: easy 2-D banana
  request.sampler = SamplerKind::kNone;
  request.classifier = ClassifierKind::kDecisionTree;
  const EvalResult result = runner.Evaluate(request);
  EXPECT_EQ(result.fold_accuracies.size(), 3u);
  EXPECT_GT(result.mean_accuracy, 0.7);
  EXPECT_LE(result.mean_accuracy, 1.0);
  EXPECT_GT(result.mean_gmean, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_sampling_ratio, 1.0);  // no sampling
}

TEST(RunnerTest, GbabsSamplerCompresses) {
  const ExperimentRunner runner(SmallConfig());
  EvalRequest request;
  request.dataset_index = 4;
  request.sampler = SamplerKind::kGbabs;
  request.classifier = ClassifierKind::kDecisionTree;
  const EvalResult result = runner.Evaluate(request);
  EXPECT_LT(result.mean_sampling_ratio, 1.0);
  EXPECT_GT(result.mean_sampling_ratio, 0.0);
  EXPECT_GT(result.mean_accuracy, 0.6);
}

TEST(RunnerTest, SrsRatioTracksGbabs) {
  const ExperimentRunner runner(SmallConfig());
  EvalRequest gbabs_req;
  gbabs_req.dataset_index = 4;
  gbabs_req.sampler = SamplerKind::kGbabs;
  EvalRequest srs_req = gbabs_req;
  srs_req.sampler = SamplerKind::kSrs;
  const EvalResult gbabs = runner.Evaluate(gbabs_req);
  const EvalResult srs = runner.Evaluate(srs_req);
  EXPECT_NEAR(srs.mean_sampling_ratio, gbabs.mean_sampling_ratio, 0.15);
}

TEST(RunnerTest, NoiseInjectionLowersAccuracy) {
  const ExperimentRunner runner(SmallConfig());
  EvalRequest clean_req;
  clean_req.dataset_index = 4;
  clean_req.classifier = ClassifierKind::kKnn;
  EvalRequest noisy_req = clean_req;
  noisy_req.noise_ratio = 0.4;
  const double clean_acc = runner.Evaluate(clean_req).mean_accuracy;
  const double noisy_acc = runner.Evaluate(noisy_req).mean_accuracy;
  EXPECT_GT(clean_acc, noisy_acc + 0.1);
}

TEST(RunnerTest, EvaluateAllMatchesSequentialEvaluate) {
  const ExperimentRunner runner(SmallConfig());
  std::vector<EvalRequest> requests;
  for (SamplerKind s : {SamplerKind::kNone, SamplerKind::kGbabs}) {
    EvalRequest r;
    r.dataset_index = 4;
    r.sampler = s;
    requests.push_back(r);
  }
  const std::vector<EvalResult> batch = runner.EvaluateAll(requests);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const EvalResult solo = runner.Evaluate(requests[i]);
    EXPECT_EQ(batch[i].fold_accuracies, solo.fold_accuracies);
  }
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> counts(100);
  for (auto& c : counts) c = 0;
  ParallelFor(100, 8, [&](int i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, ZeroAndSingleThread) {
  ParallelFor(0, 4, [](int) { FAIL(); });
  int sum = 0;
  ParallelFor(5, 1, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 10);
}

}  // namespace
}  // namespace gbx
