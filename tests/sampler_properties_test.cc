// Cross-cutting property tests: laws every sampler must satisfy, swept
// over (sampler kind x dataset) with TEST_P.
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "data/paper_suite.h"
#include "data/validate.h"
#include "sampling/sampler.h"

namespace gbx {
namespace {

using ParamType = std::tuple<SamplerKind, int>;

class SamplerLawsTest : public ::testing::TestWithParam<ParamType> {
 protected:
  Dataset MakeData() const {
    const int dataset_index = std::get<1>(GetParam());
    // Small caps keep the sweep fast; every generator family is covered.
    return MakePaperDataset(dataset_index, /*max_samples=*/250,
                            /*seed=*/101 + dataset_index);
  }
};

TEST_P(SamplerLawsTest, OutputIsValidDataset) {
  const Dataset ds = MakeData();
  const std::unique_ptr<Sampler> sampler = MakeSampler(std::get<0>(GetParam()));
  Pcg32 rng(7);
  const Dataset out = sampler->Sample(ds, &rng);
  EXPECT_GT(out.size(), 0) << sampler->name();
  EXPECT_EQ(out.num_features(), ds.num_features()) << sampler->name();
  ValidateOptions options;
  options.require_two_classes = false;
  EXPECT_TRUE(ValidateDataset(out, options).ok()) << sampler->name();
  // Labels never exceed the input label space.
  EXPECT_LE(out.num_classes(), ds.num_classes()) << sampler->name();
}

TEST_P(SamplerLawsTest, DeterministicGivenRngSeed) {
  const Dataset ds = MakeData();
  const std::unique_ptr<Sampler> sampler = MakeSampler(std::get<0>(GetParam()));
  Pcg32 rng_a(11);
  Pcg32 rng_b(11);
  const Dataset a = sampler->Sample(ds, &rng_a);
  const Dataset b = sampler->Sample(ds, &rng_b);
  ASSERT_EQ(a.size(), b.size()) << sampler->name();
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.label(i), b.label(i)) << sampler->name();
    for (int j = 0; j < a.num_features(); ++j) {
      ASSERT_DOUBLE_EQ(a.feature(i, j), b.feature(i, j)) << sampler->name();
    }
  }
}

TEST_P(SamplerLawsTest, UndersamplersReturnSubsets) {
  const SamplerKind kind = std::get<0>(GetParam());
  // Oversamplers synthesize new points; skip them here.
  if (kind == SamplerKind::kSmote || kind == SamplerKind::kBorderlineSmote ||
      kind == SamplerKind::kSmotenc || kind == SamplerKind::kIgbs) {
    GTEST_SKIP() << "oversampling/balancing method";
  }
  const Dataset ds = MakeData();
  const std::unique_ptr<Sampler> sampler = MakeSampler(kind);
  Pcg32 rng(13);
  const Dataset out = sampler->Sample(ds, &rng);
  EXPECT_LE(out.size(), ds.size()) << sampler->name();
  // Every output row must literally exist in the input.
  std::set<std::pair<double, double>> input_rows;
  for (int i = 0; i < ds.size(); ++i) {
    input_rows.emplace(ds.feature(i, 0),
                       ds.num_features() > 1 ? ds.feature(i, 1) : 0.0);
  }
  for (int i = 0; i < out.size(); ++i) {
    const auto key = std::make_pair(
        out.feature(i, 0),
        out.num_features() > 1 ? out.feature(i, 1) : 0.0);
    EXPECT_EQ(input_rows.count(key), 1u) << sampler->name() << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplersAllFamilies, SamplerLawsTest,
    ::testing::Combine(
        ::testing::Values(SamplerKind::kNone, SamplerKind::kGbabs,
                          SamplerKind::kGgbs, SamplerKind::kIgbs,
                          SamplerKind::kSrs, SamplerKind::kSmote,
                          SamplerKind::kBorderlineSmote,
                          SamplerKind::kSmotenc, SamplerKind::kTomek),
        // One dataset per generator family: banana (S5), blobs (S3),
        // extreme-IR blobs (S6), high-dim (S1), many-class high-dim (S8).
        ::testing::Values(4, 2, 5, 0, 7)),
    [](const ::testing::TestParamInfo<ParamType>& info) {
      return SamplerKindName(std::get<0>(info.param)) + "_S" +
             std::to_string(std::get<1>(info.param) + 1);
    });

}  // namespace
}  // namespace gbx
