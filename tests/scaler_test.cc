#include "data/scaler.h"

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(MinMaxScalerTest, ScalesToUnitInterval) {
  const Matrix x = Matrix::FromRows({{0, 10}, {5, 20}, {10, 30}});
  MinMaxScaler scaler;
  const Matrix scaled = scaler.FitTransform(x);
  EXPECT_DOUBLE_EQ(scaled.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled.At(2, 1), 1.0);
}

TEST(MinMaxScalerTest, ConstantFeatureMapsToZero) {
  const Matrix x = Matrix::FromRows({{3, 1}, {3, 2}});
  MinMaxScaler scaler;
  const Matrix scaled = scaler.FitTransform(x);
  EXPECT_DOUBLE_EQ(scaled.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.At(1, 0), 0.0);
}

TEST(MinMaxScalerTest, TransformUsesFittedRange) {
  MinMaxScaler scaler;
  scaler.Fit(Matrix::FromRows({{0.0}, {10.0}}));
  const Matrix out = scaler.Transform(Matrix::FromRows({{20.0}, {-10.0}}));
  EXPECT_DOUBLE_EQ(out.At(0, 0), 2.0);   // extrapolated, not clipped
  EXPECT_DOUBLE_EQ(out.At(1, 0), -1.0);
}

TEST(MinMaxScalerTest, FittedFlag) {
  MinMaxScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  scaler.Fit(Matrix::FromRows({{1.0}}));
  EXPECT_TRUE(scaler.fitted());
  EXPECT_EQ(scaler.mins().size(), 1u);
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  const Matrix x = Matrix::FromRows({{1, 100}, {2, 200}, {3, 300}});
  StandardScaler scaler;
  const Matrix scaled = scaler.FitTransform(x);
  for (int j = 0; j < 2; ++j) {
    double mean = 0.0;
    double var = 0.0;
    for (int i = 0; i < 3; ++i) mean += scaled.At(i, j);
    mean /= 3;
    for (int i = 0; i < 3; ++i) {
      var += (scaled.At(i, j) - mean) * (scaled.At(i, j) - mean);
    }
    var /= 3;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(StandardScalerTest, ConstantFeatureMapsToZero) {
  StandardScaler scaler;
  const Matrix scaled = scaler.FitTransform(Matrix::FromRows({{5.0}, {5.0}}));
  EXPECT_DOUBLE_EQ(scaled.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.At(1, 0), 0.0);
}

TEST(MinMaxScaledDatasetTest, PreservesLabelsAndShape) {
  const Dataset ds(Matrix::FromRows({{0, 5}, {10, 15}}), {1, 0});
  const Dataset scaled = MinMaxScaled(ds);
  EXPECT_EQ(scaled.size(), 2);
  EXPECT_EQ(scaled.label(0), 1);
  EXPECT_DOUBLE_EQ(scaled.feature(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled.feature(0, 1), 0.0);
}

}  // namespace
}  // namespace gbx
