// The serving subsystem's acceptance gates: a gbx-model artifact
// round-trips a trained classifier with bit-identical PredictBatch
// output, the InferenceEngine matches a serial Predict loop under
// concurrent callers, artifacts are validated strictly on load, and the
// fit-before-predict contract aborts with a message.
//
// Engine concurrency cases run on the shared servetest fixture
// (tests/serve_test_util.h), so the caller count honors GBX_THREADS like
// the rest of the serving battery.
#include <cstdio>
#include <limits>

#include <gtest/gtest.h>

#include "data/paper_suite.h"
#include "data/split.h"
#include "ml/decision_tree.h"
#include "serve/engine.h"
#include "serve/model_io.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "simd/simd.h"

namespace gbx {
namespace {

using servetest::SuiteSplit;

GbKnnClassifier FittedGbKnn(const Dataset& train, int k = 3) {
  RdGbgConfig gbg;
  gbg.seed = 17;
  GbKnnClassifier model(gbg, k);
  Pcg32 rng(5);
  model.Fit(train, &rng);
  return model;
}

std::string WithChecksum(const std::string& body) {
  char line[64];
  std::snprintf(line, sizeof(line), "checksum fnv1a %016llx\n",
                static_cast<unsigned long long>(Fnv1a64(body)));
  return body + line;
}

// --- model_io: round trips ---

TEST(ModelIoTest, GbKnnRoundTripIsBitIdentical) {
  // Two paper-suite datasets with different geometry/arity.
  for (const std::string id : {"S1", "S5"}) {
    const TrainTestSplitResult split = SuiteSplit(id);
    const GbKnnClassifier model = FittedGbKnn(split.train);
    const std::vector<int> expected = model.PredictBatch(split.test.x());

    const StatusOr<LoadedModel> loaded =
        ModelFromString(ModelToString(model));
    ASSERT_TRUE(loaded.ok()) << id << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->kind, "gb-knn");
    EXPECT_EQ(loaded->dims, split.train.num_features());
    EXPECT_EQ(loaded->num_classes, split.train.num_classes());
    EXPECT_EQ(loaded->classifier->PredictBatch(split.test.x()), expected)
        << id;
  }
}

TEST(ModelIoTest, KnnRoundTripIsBitIdentical) {
  for (const std::string id : {"S2", "S5"}) {
    const TrainTestSplitResult split = SuiteSplit(id);
    KnnClassifier model(5);
    Pcg32 rng(5);
    model.Fit(split.train, &rng);
    const std::vector<int> expected = model.PredictBatch(split.test.x());

    const StatusOr<LoadedModel> loaded =
        ModelFromString(ModelToString(model));
    ASSERT_TRUE(loaded.ok()) << id << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->kind, "knn");
    EXPECT_EQ(loaded->classifier->PredictBatch(split.test.x()), expected)
        << id;
  }
}

TEST(ModelIoTest, FileRoundTripThroughBaseClassDispatch) {
  const TrainTestSplitResult split = SuiteSplit("S5");
  const GbKnnClassifier model = FittedGbKnn(split.train);
  const Classifier& as_base = model;
  const std::string path = ::testing::TempDir() + "/gbx_model_test.gbx";
  ASSERT_TRUE(SaveModel(as_base, path).ok());
  const StatusOr<LoadedModel> loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->classifier->PredictBatch(split.test.x()),
            model.PredictBatch(split.test.x()));
  std::remove(path.c_str());
}

TEST(ModelIoTest, UnsupportedClassifierIsInvalidArgument) {
  const TrainTestSplitResult split = SuiteSplit("S5");
  DecisionTreeClassifier dt;
  Pcg32 rng(5);
  dt.Fit(split.train, &rng);
  const Status status =
      SaveModel(static_cast<const Classifier&>(dt), "/tmp/unused.gbx");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadModel("/no/such/model.gbx").status().code(),
            StatusCode::kNotFound);
}

// --- model_io: strict validation ---

TEST(ModelIoTest, EveryTruncationIsRejected) {
  const TrainTestSplitResult split = SuiteSplit("S5");
  const std::string text = ModelToString(FittedGbKnn(split.train));
  for (int i = 1; i <= 60; ++i) {
    const std::size_t cut = text.size() * i / 61;
    EXPECT_FALSE(ModelFromString(text.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(ModelIoTest, EveryBitFlipIsRejectedByChecksum) {
  const TrainTestSplitResult split = SuiteSplit("S1");
  KnnClassifier model(5);
  Pcg32 rng(5);
  model.Fit(split.train, &rng);
  const std::string text = ModelToString(model);
  for (int i = 0; i < 60; ++i) {
    const std::size_t pos = text.size() * i / 60;
    std::string corrupt = text;
    corrupt[pos] = corrupt[pos] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(ModelFromString(corrupt).ok())
        << "flip at byte " << pos << " parsed";
  }
}

TEST(ModelIoTest, RejectsNonFiniteTrainingFeature) {
  const std::string body =
      "gbx-model v1\n"
      "classifier knn\n"
      "config k 1\n"
      "classes 2 dims 2\n"
      "data 2\n"
      "0.0 nan 0\n"
      "1.0 1.0 1\n";
  // "nan" either parses to a NaN (libc++) or fails the stream
  // (libstdc++); both must yield a descriptive error.
  const StatusOr<LoadedModel> loaded = ModelFromString(WithChecksum(body));
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().message().empty());
}

TEST(ModelIoTest, RejectsLabelOutOfRange) {
  const std::string body =
      "gbx-model v1\n"
      "classifier knn\n"
      "config k 1\n"
      "classes 2 dims 1\n"
      "data 2\n"
      "0.0 0\n"
      "1.0 7\n";
  EXPECT_EQ(ModelFromString(WithChecksum(body)).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ModelIoTest, RejectsHugeDeclaredSizesWithoutAllocating) {
  // A crafted header promising petabytes must fail fast, not allocate.
  const std::string body =
      "gbx-model v1\n"
      "classifier knn\n"
      "config k 1\n"
      "classes 2 dims 1000000\n"
      "data 1000000000\n"
      "0.0 0\n";
  EXPECT_FALSE(ModelFromString(WithChecksum(body)).ok());
}

TEST(ModelIoTest, RejectsTrailingGarbageInsidePayload) {
  // Garbage between the rows and the (correct) checksum line.
  const std::string body =
      "gbx-model v1\n"
      "classifier knn\n"
      "config k 1\n"
      "classes 2 dims 1\n"
      "data 2\n"
      "0.0 0\n"
      "1.0 1\n"
      "GARBAGE\n";
  EXPECT_FALSE(ModelFromString(WithChecksum(body)).ok());
}

TEST(ModelIoTest, RejectsNegativeRadiusInEmbeddedBalls) {
  const std::string body =
      "gbx-model v1\n"
      "classifier gb-knn\n"
      "config k 1 rho 5 seed 1\n"
      "classes 2 dims 1\n"
      "scaler minmax\n"
      "0.0\n"
      "1.0\n"
      "balls\n"
      "gbx-granular-balls v1\n"
      "dims 1 classes 2 balls 1 samples 2\n"
      "ball 0 -0.5 0 0.5 members 1 0\n"
      "features\n0.0\n1.0\n";
  const StatusOr<LoadedModel> loaded = ModelFromString(WithChecksum(body));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("radius"), std::string::npos)
      << loaded.status().ToString();
}

TEST(ModelIoTest, RejectsBallDimensionMismatch) {
  // Header says dims 2 (and the scaler has 2 features) but the embedded
  // ball set is 1-dimensional.
  const std::string body =
      "gbx-model v1\n"
      "classifier gb-knn\n"
      "config k 1 rho 5 seed 1\n"
      "classes 2 dims 2\n"
      "scaler minmax\n"
      "0.0 0.0\n"
      "1.0 1.0\n"
      "balls\n"
      "gbx-granular-balls v1\n"
      "dims 1 classes 2 balls 1 samples 2\n"
      "ball 0 0.5 0 0.5 members 1 0\n"
      "features\n0.0\n1.0\n";
  const StatusOr<LoadedModel> loaded = ModelFromString(WithChecksum(body));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("dims"), std::string::npos)
      << loaded.status().ToString();
}

// --- InferenceEngine (on the shared GBX_THREADS-honoring fixture) ---

using EngineTest = servetest::ServeTestBase;

TEST_F(EngineTest, MatchesSerialPredictUnderConcurrentCallers) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  const std::unique_ptr<InferenceEngine> engine = MakeEngine(bundle);

  const std::vector<int> got =
      ConcurrentPredict(engine.get(), bundle.split.test);
  EXPECT_EQ(got, bundle.expected);

  const InferenceEngineStats stats = engine->Stats();
  EXPECT_EQ(stats.requests, bundle.split.test.size());
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
  EXPECT_GE(stats.max_ms, stats.p99_ms);
  EXPECT_GT(stats.qps, 0.0);
}

TEST_F(EngineTest, DirectBatchPathMatchesAndCounts) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S1");
  const std::unique_ptr<InferenceEngine> engine =
      MakeEngine(bundle, InferenceEngineOptions{});

  const StatusOr<std::vector<int>> got =
      engine->PredictBatch(bundle.split.test.x());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, bundle.expected);
  EXPECT_EQ(engine->Stats().requests, bundle.split.test.size());
  EXPECT_EQ(engine->Stats().batches, 1);
}

// An artifact trained under whatever level fitted the bundle must serve
// bit-identically under EVERY dispatch level the host supports — the
// end-to-end half of the simd kernel contract: same artifact, same
// engine, forced level, identical labels under concurrent callers.
TEST_F(EngineTest, ServesIdenticallyUnderEveryDispatchLevel) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kNeon,
                            simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (!simd::Supported(level)) continue;
    simd::SetLevelForTest(level);
    const std::unique_ptr<InferenceEngine> engine = MakeEngine(bundle);
    EXPECT_EQ(ConcurrentPredict(engine.get(), bundle.split.test),
              bundle.expected)
        << "level " << simd::LevelName(level);
  }
  simd::ReresolveFromEnvForTest();
}

// The sampled tier behind the engine — the gbx_serve load path
// (artifact -> set_index_strategy -> set_recall_target -> engine):
// recall 1.0 serves the exact labels; a lower knob still serves
// deterministically (batch composition and caller threading never leak
// into predictions).
TEST_F(EngineTest, SampledStrategyServesDeterministically) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  auto make_sampled_engine = [&bundle](double recall) {
    LoadedModel model = servetest::LoadBundle(bundle);
    auto* gbknn = dynamic_cast<GbKnnClassifier*>(model.classifier.get());
    GBX_CHECK(gbknn != nullptr);
    gbknn->set_index_strategy(IndexStrategy::kSampled);
    GBX_CHECK(gbknn->resolved_index_strategy() == IndexStrategy::kSampled);
    gbknn->set_recall_target(recall);
    return std::make_unique<InferenceEngine>(std::move(model),
                                             servetest::SmallBatchOptions());
  };

  // recall 1.0 (the default): exact labels through the engine.
  const std::unique_ptr<InferenceEngine> exact = make_sampled_engine(1.0);
  EXPECT_EQ(ConcurrentPredict(exact.get(), bundle.split.test),
            bundle.expected);

  // Below 1.0: approximate but deterministic — two engines over the
  // same artifact and knob agree label for label under concurrency.
  const std::unique_ptr<InferenceEngine> a = make_sampled_engine(0.6);
  const std::unique_ptr<InferenceEngine> b = make_sampled_engine(0.6);
  EXPECT_EQ(ConcurrentPredict(a.get(), bundle.split.test),
            ConcurrentPredict(b.get(), bundle.split.test));
}

// --- per-call recall overrides (the degradation ladder's engine hook) ---

// A per-request override must serve exactly what a model *fitted* to
// that knob serves — recall is a call parameter threaded through
// ScoredTopK, not mutated model state.
TEST_F(EngineTest, PerCallRecallOverrideMatchesFittedKnob) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;

  // Reference labels: the same artifact with the knob fitted in.
  LoadedModel ref = servetest::LoadBundle(bundle);
  auto* ref_gbknn = dynamic_cast<GbKnnClassifier*>(ref.classifier.get());
  ASSERT_NE(ref_gbknn, nullptr);
  ref_gbknn->set_index_strategy(IndexStrategy::kSampled);
  ref_gbknn->set_recall_target(0.6);
  const std::vector<int> fitted = ref_gbknn->PredictBatch(test.x());

  // An engine over a FULL-QUALITY sampled model; recall arrives per call.
  LoadedModel served = servetest::LoadBundle(bundle);
  auto* gbknn = dynamic_cast<GbKnnClassifier*>(served.classifier.get());
  ASSERT_NE(gbknn, nullptr);
  gbknn->set_index_strategy(IndexStrategy::kSampled);
  InferenceEngine engine(std::move(served), InferenceEngineOptions{});

  PredictOverrides overrides;
  overrides.recall = 0.6;
  for (int i = 0; i < test.size(); ++i) {
    PredictTiming timing;
    const StatusOr<int> label =
        engine.Predict(test.row(i), test.num_features(), &timing, &overrides);
    ASSERT_TRUE(label.ok()) << label.status().ToString();
    EXPECT_EQ(*label, fitted[i]) << "query " << i;
    EXPECT_DOUBLE_EQ(timing.applied_recall, 0.6) << "query " << i;
  }

  // The model's own knob never moved: a call without the override (and
  // one at recall 1.0, the "no override" sentinel) still serves the
  // exact labels, untagged.
  PredictTiming timing;
  StatusOr<int> exact = engine.Predict(test.row(0), test.num_features(),
                                       &timing);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, bundle.expected[0]);
  EXPECT_EQ(timing.applied_recall, 0.0);
  overrides.recall = 1.0;
  exact = engine.Predict(test.row(0), test.num_features(), &timing,
                         &overrides);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, bundle.expected[0]);
  EXPECT_EQ(timing.applied_recall, 0.0);
}

TEST_F(EngineTest, RecallOverrideIsValidatedAndInertOffTheSampledTier) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  const std::unique_ptr<InferenceEngine> engine =
      MakeEngine(bundle, InferenceEngineOptions{});

  // Typed rejection, never clamping.
  PredictOverrides bad;
  for (const double recall : {-0.25, 1.5}) {
    bad.recall = recall;
    EXPECT_EQ(engine->Predict(test.row(0), test.num_features(), nullptr, &bad)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << "recall " << recall;
  }
  bad.recall = 0.5;
  for (const double scale : {0.0, -1.0, 2.0}) {
    bad.batch_delay_scale = scale;
    EXPECT_EQ(engine->Predict(test.row(0), test.num_features(), nullptr, &bad)
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << "batch_delay_scale " << scale;
  }

  // The bundle resolved off the sampled tier (kAuto never picks it), so
  // a valid override is inert: exact labels, nothing applied.
  PredictOverrides overrides;
  overrides.recall = 0.6;
  PredictTiming timing;
  const StatusOr<int> label =
      engine->Predict(test.row(0), test.num_features(), &timing, &overrides);
  ASSERT_TRUE(label.ok()) << label.status().ToString();
  EXPECT_EQ(*label, bundle.expected[0]);
  EXPECT_EQ(timing.applied_recall, 0.0);
}

// --- recall flag validation (shared by gbx_serve and Server::Start) ---

TEST(ValidateRecallTest, RejectsOutsideUnitIntervalTyped) {
  EXPECT_TRUE(ValidateRecall(1.0, "--recall").ok());
  EXPECT_TRUE(ValidateRecall(0.01, "--recall").ok());
  EXPECT_TRUE(ValidateRecall(0.5, "--min-recall").ok());
  for (const double bad :
       {0.0, -0.3, 1.0001, 7.0,
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    const Status status = ValidateRecall(bad, "--recall");
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
    // The message names the offending knob: the CLI prints it verbatim.
    EXPECT_NE(status.message().find("--recall"), std::string::npos) << bad;
  }
}

TEST_F(EngineTest, RejectsMalformedQueriesAndKeepsServing) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  const std::unique_ptr<InferenceEngine> engine =
      MakeEngine(bundle, InferenceEngineOptions{});

  const std::vector<double> wrong_arity(engine->dims() + 1, 0.0);
  EXPECT_EQ(engine->Predict(wrong_arity).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<double> with_nan(engine->dims(), 0.0);
  with_nan[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine->Predict(with_nan).status().code(),
            StatusCode::kInvalidArgument);

  // Rejected queries never reach a batch; good queries still work.
  EXPECT_TRUE(engine
                  ->Predict(bundle.split.test.row(0),
                            bundle.split.test.num_features())
                  .ok());
}

// --- fit-before-predict contract ---

TEST(FitContractTest, PredictBeforeFitAbortsWithMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<double> x(4, 0.0);
  EXPECT_DEATH(GbKnnClassifier().Predict(x.data()), "before Fit");
  EXPECT_DEATH(KnnClassifier().Predict(x.data()), "before Fit");
  EXPECT_DEATH(DecisionTreeClassifier().Predict(x.data()), "before Fit");
}

}  // namespace
}  // namespace gbx
