// Shared fixture for the serving test batteries (serve_test.cc,
// server_test.cc, hot_swap_test.cc, protocol_fuzz_test.cc): one place
// that fits paper-suite models, turns them into artifacts/LoadedModels,
// and runs concurrent caller threads — honoring GBX_THREADS, so the
// determinism and asan CI legs (GBX_THREADS=4) drive every suite with
// the same concurrency instead of per-test ad-hoc thread counts.
#ifndef GBX_TESTS_SERVE_TEST_UTIL_H_
#define GBX_TESTS_SERVE_TEST_UTIL_H_

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "data/paper_suite.h"
#include "data/split.h"
#include "ml/gb_knn.h"
#include "ml/knn.h"
#include "serve/engine.h"
#include "serve/model_io.h"
#include "serve/protocol.h"

namespace gbx {
namespace servetest {

/// Concurrent caller/client thread count: GBX_THREADS when set (the CI
/// determinism legs pin it to 4), otherwise hardware — clamped to
/// [2, 8] so the suites always exercise real concurrency but never
/// oversubscribe a CI runner.
inline int CallerThreads() { return std::clamp(DefaultNumThreads(), 2, 8); }

/// The engine options every serving test starts from: small batches and
/// a real coalescing window, so micro-batching actually happens under
/// concurrent callers.
inline InferenceEngineOptions SmallBatchOptions() {
  InferenceEngineOptions opts;
  opts.max_batch_size = 16;
  opts.max_batch_delay_ms = 0.5;
  return opts;
}

/// One fitted model, its artifact, and its ground-truth predictions.
struct ModelBundle {
  TrainTestSplitResult split;
  std::string artifact;       // ModelToString text (checksummed)
  std::uint64_t checksum = 0; // the artifact's FNV-1a-64
  std::vector<int> expected;  // fitted model's PredictBatch over split.test
};

/// Deterministic split shared by every bundle of the same id/max_samples.
inline TrainTestSplitResult SuiteSplit(const std::string& id,
                                       int max_samples = 400) {
  const Dataset ds = MakePaperDataset(id, max_samples, 9);
  Pcg32 rng(11);
  return TrainTestSplit(ds, 0.3, &rng);
}

/// Fits GB-kNN on a paper-suite split. Different (k, gbg_seed) pairs
/// yield models that disagree on some holdout queries — what the
/// hot-swap battery needs to tell versions apart.
inline ModelBundle MakeGbKnnBundle(const std::string& id, int k = 3,
                                   std::uint64_t gbg_seed = 17,
                                   int max_samples = 400) {
  ModelBundle b;
  b.split = SuiteSplit(id, max_samples);
  RdGbgConfig gbg;
  gbg.seed = gbg_seed;
  GbKnnClassifier model(gbg, k);
  Pcg32 fit_rng(5);
  model.Fit(b.split.train, &fit_rng);
  b.expected = model.PredictBatch(b.split.test.x());
  b.artifact = ModelToString(model);
  StatusOr<LoadedModel> loaded = ModelFromString(b.artifact);
  GBX_CHECK_MSG(loaded.ok(), "test bundle artifact must load");
  b.checksum = loaded->checksum;
  return b;
}

inline ModelBundle MakeKnnBundle(const std::string& id, int k = 5,
                                 int max_samples = 400) {
  ModelBundle b;
  b.split = SuiteSplit(id, max_samples);
  KnnClassifier model(k);
  Pcg32 fit_rng(5);
  model.Fit(b.split.train, &fit_rng);
  b.expected = model.PredictBatch(b.split.test.x());
  b.artifact = ModelToString(model);
  StatusOr<LoadedModel> loaded = ModelFromString(b.artifact);
  GBX_CHECK_MSG(loaded.ok(), "test bundle artifact must load");
  b.checksum = loaded->checksum;
  return b;
}

inline LoadedModel LoadBundle(const ModelBundle& b) {
  StatusOr<LoadedModel> loaded = ModelFromString(b.artifact);
  GBX_CHECK_MSG(loaded.ok(), "test bundle artifact must load");
  return std::move(loaded).value();
}

/// Base fixture for engine-level tests: build an engine from a bundle
/// and predict with CallerThreads() concurrent callers.
class ServeTestBase : public ::testing::Test {
 protected:
  static std::unique_ptr<InferenceEngine> MakeEngine(
      const ModelBundle& bundle,
      InferenceEngineOptions opts = SmallBatchOptions()) {
    return std::make_unique<InferenceEngine>(LoadBundle(bundle), opts);
  }

  /// Predicts every row of `test` through engine->Predict from
  /// CallerThreads() striding threads. Every call must succeed.
  static std::vector<int> ConcurrentPredict(InferenceEngine* engine,
                                            const Dataset& test) {
    const int n = test.size();
    const int callers = CallerThreads();
    std::vector<int> got(n, -1);
    std::vector<std::thread> threads;
    threads.reserve(callers);
    for (int t = 0; t < callers; ++t) {
      threads.emplace_back([&, t] {
        for (int i = t; i < n; i += callers) {
          const StatusOr<int> label =
              engine->Predict(test.row(i), test.num_features());
          ASSERT_TRUE(label.ok()) << label.status().ToString();
          got[i] = *label;
        }
      });
    }
    for (std::thread& th : threads) th.join();
    return got;
  }
};

// --- socket-side helpers (server_test, hot_swap_test, protocol_fuzz) ---

/// Blocking gbx-wire client over one TCP connection.
class TestClient {
 public:
  explicit TestClient(int port, const std::string& host = "127.0.0.1",
                      double timeout_s = 10.0) {
    StatusOr<int> fd = ConnectTcp(host, port, timeout_s);
    GBX_CHECK_MSG(fd.ok(), "test client could not connect");
    fd_ = *fd;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  Status Send(std::string_view payload) { return SendFrame(fd_, payload); }
  StatusOr<std::string> Recv() { return RecvFrame(fd_); }
  StatusOr<std::string> Call(std::string_view payload) {
    GBX_RETURN_IF_ERROR(Send(payload));
    return Recv();
  }

  /// Raw bytes, bypassing framing — the fuzz battery's hammer.
  Status SendRaw(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
      if (w > 0) {
        sent += static_cast<std::size_t>(w);
      } else if (w < 0 && errno == EINTR) {
        continue;
      } else {
        return Status::Internal("send failed");
      }
    }
    return Status::Ok();
  }

  int fd() const { return fd_; }
  /// Hard close without a goodbye — mid-frame disconnect simulation.
  void CloseAbruptly() {
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// A parsed "ok LABEL fnv1a CHECKSUM16" predict reply.
struct PredictReply {
  int label = -1;
  std::uint64_t checksum = 0;
};

inline StatusOr<PredictReply> ParsePredictReply(const std::string& payload) {
  PredictReply reply;
  unsigned long long checksum = 0;
  if (std::sscanf(payload.c_str(), "ok %d fnv1a %16llx", &reply.label,
                  &checksum) != 2) {
    return Status::Internal("unexpected predict reply: " + payload);
  }
  reply.checksum = checksum;
  return reply;
}

}  // namespace servetest
}  // namespace gbx

#endif  // GBX_TESTS_SERVE_TEST_UTIL_H_
