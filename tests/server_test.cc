// End-to-end socket battery for the network serving front-end
// (serve/server.h): predictions over TCP are bit-identical to the
// in-process InferenceEngine path on every paper-suite dataset,
// concurrent clients all get correct answers, "@model" routing hits the
// right registry entry, pipelined responses arrive in request order,
// the poll() fallback serves identically to epoll, and the admin
// protocol works. Client/caller counts honor GBX_THREADS via the shared
// servetest fixture.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "data/paper_suite.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace gbx {
namespace {

using servetest::CallerThreads;
using servetest::MakeGbKnnBundle;
using servetest::ModelBundle;
using servetest::ParsePredictReply;
using servetest::PredictReply;
using servetest::SmallBatchOptions;
using servetest::TestClient;

class ServerTest : public servetest::ServeTestBase {
 protected:
  /// Starts a server on an ephemeral port over `registry`.
  static std::unique_ptr<Server> StartServer(
      std::shared_ptr<ModelRegistry> registry, ServerOptions opts = {}) {
    auto server = std::make_unique<Server>(std::move(registry), opts);
    const Status started = server->Start();
    GBX_CHECK_MSG(started.ok(), "test server must start");
    return server;
  }

  /// Registry with one bundle published under `name`.
  static std::shared_ptr<ModelRegistry> OneModelRegistry(
      const ModelBundle& bundle, const std::string& name = "default") {
    auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
    GBX_CHECK(registry->Publish(name, servetest::LoadBundle(bundle)).ok());
    return registry;
  }
};

// The headline acceptance criterion: for every paper-suite dataset,
// labels served over the socket are bit-identical to the fitted model's
// PredictBatch, and every response carries that artifact's checksum.
// All 13 models are published into ONE server; each dataset's queries
// route via "@Sx".
TEST_F(ServerTest, SocketPredictionsBitIdenticalAcrossPaperSuite) {
  std::vector<ModelBundle> bundles;
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  for (const PaperDatasetSpec& spec : PaperDatasetSpecs()) {
    bundles.push_back(MakeGbKnnBundle(spec.id));
    ASSERT_TRUE(
        registry->Publish(spec.id, servetest::LoadBundle(bundles.back())).ok());
  }
  const std::unique_ptr<Server> server = StartServer(registry);

  for (std::size_t b = 0; b < bundles.size(); ++b) {
    const ModelBundle& bundle = bundles[b];
    const std::string& id = PaperDatasetSpecs()[b].id;
    const Dataset& test = bundle.split.test;
    TestClient client(server->port());
    // Pipeline every query, then read every response: the per-connection
    // ordering guarantee makes position i the answer to query i.
    for (int i = 0; i < test.size(); ++i) {
      ASSERT_TRUE(
          client
              .Send(FormatPredictPayload(id, test.row(i), test.num_features()))
              .ok());
    }
    for (int i = 0; i < test.size(); ++i) {
      const StatusOr<std::string> payload = client.Recv();
      ASSERT_TRUE(payload.ok()) << id << ": " << payload.status().ToString();
      const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
      ASSERT_TRUE(reply.ok()) << id << ": " << reply.status().ToString();
      EXPECT_EQ(reply->label, bundle.expected[i]) << id << " query " << i;
      EXPECT_EQ(reply->checksum, bundle.checksum) << id << " query " << i;
    }
  }

  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.protocol_errors, 0);
  EXPECT_EQ(stats.frames_received, stats.frames_sent);
}

TEST_F(ServerTest, ConcurrentClientsGetBitIdenticalAnswers) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle));
  const Dataset& test = bundle.split.test;

  const int clients = CallerThreads();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      TestClient client(server->port());
      for (int i = t; i < test.size(); i += clients) {
        const StatusOr<std::string> payload = client.Call(
            FormatPredictPayload("", test.row(i), test.num_features()));
        ASSERT_TRUE(payload.ok()) << payload.status().ToString();
        const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        EXPECT_EQ(reply->label, bundle.expected[i]) << "query " << i;
        EXPECT_EQ(reply->checksum, bundle.checksum);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const ServerStats stats = server->Stats();
  EXPECT_EQ(stats.connections_accepted, clients);
  EXPECT_EQ(stats.frames_received, test.size());
  EXPECT_EQ(stats.frames_sent, test.size());
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST_F(ServerTest, RoutesPerModelAndReportsUnknown) {
  // Two models with different dimensionality, so a cross-routed query
  // could not silently succeed.
  const ModelBundle alpha = MakeGbKnnBundle("S1");
  const ModelBundle beta = MakeGbKnnBundle("S2");
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(registry->Publish("alpha", servetest::LoadBundle(alpha)).ok());
  ASSERT_TRUE(registry->Publish("beta", servetest::LoadBundle(beta)).ok());
  ServerOptions opts;
  opts.default_model = "alpha";
  const std::unique_ptr<Server> server = StartServer(registry, opts);

  TestClient client(server->port());
  const Dataset& atest = alpha.split.test;
  const Dataset& btest = beta.split.test;

  // Unprefixed -> default model.
  StatusOr<std::string> payload = client.Call(
      FormatPredictPayload("", atest.row(0), atest.num_features()));
  ASSERT_TRUE(payload.ok());
  StatusOr<PredictReply> reply = ParsePredictReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->label, alpha.expected[0]);
  EXPECT_EQ(reply->checksum, alpha.checksum);

  // "@beta" -> the other entry, tagged with the other checksum.
  payload = client.Call(
      FormatPredictPayload("beta", btest.row(0), btest.num_features()));
  ASSERT_TRUE(payload.ok());
  reply = ParsePredictReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->label, beta.expected[0]);
  EXPECT_EQ(reply->checksum, beta.checksum);

  // Unknown model: structured NOT_FOUND, connection stays open.
  payload = client.Call(
      FormatPredictPayload("ghost", atest.row(0), atest.num_features()));
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("error NOT_FOUND", 0), 0) << *payload;

  payload = client.Call(
      FormatPredictPayload("", atest.row(1), atest.num_features()));
  ASSERT_TRUE(payload.ok());
  reply = ParsePredictReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->label, alpha.expected[1]);
}

TEST_F(ServerTest, PipelinedResponsesArriveInRequestOrder) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle));
  const Dataset& test = bundle.split.test;
  const int n = std::min(64, test.size());

  TestClient client(server->port());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        client.Send(FormatPredictPayload("", test.row(i), test.num_features()))
            .ok());
  }
  for (int i = 0; i < n; ++i) {
    const StatusOr<std::string> payload = client.Recv();
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    // Out-of-order worker completions must be reordered per connection:
    // response i answers query i, always.
    EXPECT_EQ(reply->label, bundle.expected[i]) << "position " << i;
  }
}

TEST_F(ServerTest, PollBackendServesIdentically) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  ServerOptions opts;
  opts.force_poll = true;
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle), opts);
  const Dataset& test = bundle.split.test;

  TestClient client(server->port());
  for (int i = 0; i < std::min(32, test.size()); ++i) {
    const StatusOr<std::string> payload = client.Call(
        FormatPredictPayload("", test.row(i), test.num_features()));
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->label, bundle.expected[i]) << "query " << i;
  }
}

TEST_F(ServerTest, AdminProtocolAnswersPingListAndStat) {
  const ModelBundle alpha = MakeGbKnnBundle("S1");
  const ModelBundle beta = MakeGbKnnBundle("S2");
  auto registry = std::make_shared<ModelRegistry>(SmallBatchOptions());
  ASSERT_TRUE(registry->Publish("alpha", servetest::LoadBundle(alpha)).ok());
  ASSERT_TRUE(registry->Publish("beta", servetest::LoadBundle(beta)).ok());
  const std::unique_ptr<Server> server = StartServer(registry);

  TestClient client(server->port());
  StatusOr<std::string> payload = client.Call("!ping");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "ok pong");

  payload = client.Call("!list");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok models 2", 0), 0) << *payload;
  EXPECT_NE(payload->find("alpha v1"), std::string::npos) << *payload;
  EXPECT_NE(payload->find("beta v1"), std::string::npos) << *payload;

  payload = client.Call("!stat alpha");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok stats alpha v1", 0), 0) << *payload;

  payload = client.Call("!stat ghost");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("error NOT_FOUND", 0), 0) << *payload;

  payload = client.Call("!frobnicate");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("error INVALID_ARGUMENT", 0), 0) << *payload;
}

TEST_F(ServerTest, HealthProbeReportsReadyAndUnready) {
  // A server with a published model and healthy workers is ready, and
  // reports the controller off (the default).
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle));
  TestClient client(server->port());
  StatusOr<std::string> payload = client.Call("!health");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok health ready", 0), 0) << *payload;
  EXPECT_NE(payload->find(" models 1 "), std::string::npos) << *payload;
  EXPECT_NE(payload->find(" stalled 0 "), std::string::npos) << *payload;
  EXPECT_NE(payload->find(" degrade off"), std::string::npos) << *payload;

  // An empty registry is unready ("no-models") — the load balancer must
  // not route predict traffic at a server that cannot answer it — but
  // the probe itself still answers.
  const std::unique_ptr<Server> empty =
      StartServer(std::make_shared<ModelRegistry>(SmallBatchOptions()));
  TestClient probe(empty->port());
  payload = probe.Call("!health");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok health unready", 0), 0) << *payload;
  EXPECT_NE(payload->find("no-models"), std::string::npos) << *payload;

  // With the ladder armed, the probe reports level and recall.
  ServerOptions opts;
  opts.degrade_auto = true;
  const std::unique_ptr<Server> armed =
      StartServer(OneModelRegistry(bundle), opts);
  TestClient armed_client(armed->port());
  payload = armed_client.Call("!health");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok health ready", 0), 0) << *payload;
  EXPECT_NE(payload->find(" degrade 0 recall 1"), std::string::npos)
      << *payload;
}

TEST_F(ServerTest, StartRejectsBadDegradeConfigTyped) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const auto expect_rejected = [&](ServerOptions opts, const char* what) {
    Server server(OneModelRegistry(bundle), opts);
    const Status started = server.Start();
    EXPECT_EQ(started.code(), StatusCode::kInvalidArgument) << what;
    EXPECT_FALSE(server.running()) << what;
  };
  ServerOptions opts;
  opts.degrade.min_recall = 1.5;
  expect_rejected(opts, "min_recall above 1");
  opts = ServerOptions{};
  opts.degrade.min_recall = 0.0;
  expect_rejected(opts, "min_recall zero");
  opts = ServerOptions{};
  opts.degrade.low_watermark = 0.9;  // >= high_watermark
  expect_rejected(opts, "inverted watermarks");
  opts = ServerOptions{};
  opts.worker_stall_ms = -1.0;
  expect_rejected(opts, "negative stall deadline");
}

// ---------------------------------------------------------------------------
// Observability battery: "!metrics" and "!trace" over the wire.

/// Extracts the value of the first Prometheus series whose line starts
/// with `series` (full "name{labels}" or bare name). -1 when absent.
double PromValue(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(series, 0) == 0 && line.size() > series.size() &&
        line[series.size()] == ' ') {
      return std::atof(line.c_str() + series.size() + 1);
    }
  }
  return -1.0;
}

/// Sum of `name` span durations in a formatted trace payload; lines
/// look like "  queue_wait @0.000ms +0.514ms".
double SpanDurationMs(const std::string& payload, const std::string& name) {
  double total = 0.0;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string span, at, plus;
    if (!(fields >> span >> at >> plus)) continue;
    if (span != name || plus.size() < 4 || plus[0] != '+') continue;
    total += std::atof(plus.c_str() + 1);
  }
  return total;
}

TEST_F(ServerTest, MetricsAdminScrapesPromAndJson) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle));
  const Dataset& test = bundle.split.test;

  TestClient client(server->port());
  const int n = std::min(16, test.size());
  for (int i = 0; i < n; ++i) {
    const StatusOr<std::string> payload = client.Call(
        FormatPredictPayload("", test.row(i), test.num_features()));
    ASSERT_TRUE(payload.ok());
  }

  // Bare "!metrics" defaults to prom; an unknown format is a usage
  // error that leaves the connection open.
  StatusOr<std::string> payload = client.Call("!metrics bogus");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("error INVALID_ARGUMENT", 0), 0) << *payload;

  payload = client.Call("!metrics");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok metrics prom\n", 0), 0) << *payload;

  payload = client.Call("!metrics prom");
  ASSERT_TRUE(payload.ok());
  ASSERT_EQ(payload->rfind("ok metrics prom\n", 0), 0) << *payload;
  const std::string prom = payload->substr(payload->find('\n') + 1);

  payload = client.Call("!metrics json");
  ASSERT_TRUE(payload.ok());
  ASSERT_EQ(payload->rfind("ok metrics json\n", 0), 0) << *payload;
  const std::string json = payload->substr(payload->find('\n') + 1);
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u) << json;
  EXPECT_EQ(json.substr(json.size() - 2), "]}") << json;

  if (!metrics::kCompiledIn) {
    GTEST_SKIP() << "metrics sites compiled out: exposition is all-zero";
  }
  // The registry is process-global and cumulative across tests, so
  // assert lower bounds, not exact counts.
  EXPECT_GE(PromValue(prom, "gbx_server_requests_total{result=\"ok\"}"), n)
      << prom;
  EXPECT_GE(PromValue(prom, "gbx_server_frames_received_total"), n + 3);
  EXPECT_GE(PromValue(prom, "gbx_engine_requests_total"), n);
  EXPECT_GE(
      PromValue(prom, "gbx_server_request_ms_count"),
      PromValue(prom, "gbx_server_requests_total{result=\"ok\"}") - 1.0);
  EXPECT_NE(prom.find("# TYPE gbx_server_stage_ms histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("gbx_server_stage_ms_bucket{stage=\"compute\","
                      "le=\"+Inf\"}"),
            std::string::npos)
      << prom;

  // Monotonic re-scrape: another predict can only grow the counters.
  const double before =
      PromValue(prom, "gbx_server_requests_total{result=\"ok\"}");
  ASSERT_TRUE(client
                  .Call(FormatPredictPayload("", test.row(0),
                                             test.num_features()))
                  .ok());
  payload = client.Call("!metrics prom");
  ASSERT_TRUE(payload.ok());
  EXPECT_GE(PromValue(*payload, "gbx_server_requests_total{result=\"ok\"}"),
            before + 1.0);
}

TEST_F(ServerTest, TraceAttributionFitsClientObservedLatency) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle));
  const Dataset& test = bundle.split.test;

  TestClient client(server->port());
  const auto sent = std::chrono::steady_clock::now();
  const StatusOr<std::string> predict = client.Call(
      FormatPredictPayload("", test.row(0), test.num_features()));
  const double client_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - sent)
                               .count();
  ASSERT_TRUE(predict.ok());
  ASSERT_EQ(predict->rfind("ok ", 0), 0) << *predict;

  StatusOr<std::string> payload = client.Call("!trace last 1");
  ASSERT_TRUE(payload.ok());
  ASSERT_EQ(payload->rfind("ok traces 1\n", 0), 0) << *payload;
  EXPECT_NE(payload->find("name=predict"), std::string::npos) << *payload;
  for (const char* span : {"queue_wait", "decode", "compute", "encode"}) {
    EXPECT_NE(payload->find(span), std::string::npos)
        << "missing span " << span << " in: " << *payload;
  }
  // The server's own attribution must fit inside what the client saw:
  // queue wait + compute happen strictly between send and receive.
  // (1 ms slack: client and server round timestamps independently.)
  const double attributed = SpanDurationMs(*payload, "queue_wait") +
                            SpanDurationMs(*payload, "compute");
  EXPECT_LE(attributed, client_ms + 1.0) << *payload;

  payload = client.Call("!trace bogus");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("error INVALID_ARGUMENT", 0), 0) << *payload;
}

TEST_F(ServerTest, SlowTraceThresholdRoutesToSlowRing) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  ServerOptions opts;
  opts.slow_trace_ms = 0.0001;  // everything is "slow"
  const std::unique_ptr<Server> server =
      StartServer(OneModelRegistry(bundle), opts);
  const Dataset& test = bundle.split.test;

  TestClient client(server->port());
  ASSERT_TRUE(client
                  .Call(FormatPredictPayload("", test.row(0),
                                             test.num_features()))
                  .ok());
  const StatusOr<std::string> payload = client.Call("!trace slow 4");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->rfind("ok traces ", 0), 0) << *payload;
  EXPECT_NE(*payload, "ok traces 0") << "slow ring empty";
  EXPECT_NE(payload->find("name=predict"), std::string::npos) << *payload;
}

TEST_F(ServerTest, RestartsCleanlyAndStopIsIdempotent) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  const std::shared_ptr<ModelRegistry> registry = OneModelRegistry(bundle);
  const Dataset& test = bundle.split.test;

  for (int round = 0; round < 3; ++round) {
    Server server(registry);
    ASSERT_TRUE(server.Start().ok()) << "round " << round;
    TestClient client(server.port());
    const StatusOr<std::string> payload = client.Call(
        FormatPredictPayload("", test.row(round), test.num_features()));
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->label, bundle.expected[round]);
    server.Stop();
    server.Stop();  // idempotent
    EXPECT_FALSE(server.running());
  }
}

TEST_F(ServerTest, StopDrainsInFlightRequests) {
  const ModelBundle bundle = MakeGbKnnBundle("S5");
  auto server = std::make_unique<Server>(OneModelRegistry(bundle));
  ASSERT_TRUE(server->Start().ok());
  const Dataset& test = bundle.split.test;

  // Pipeline a burst, wait for the first response (so the server has
  // demonstrably ingested the burst), then Stop() while the rest are
  // still in flight: the drain must answer every accepted frame before
  // sockets close.
  TestClient client(server->port());
  const int n = std::min(48, test.size());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        client.Send(FormatPredictPayload("", test.row(i), test.num_features()))
            .ok());
  }
  StatusOr<std::string> first = client.Recv();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  StatusOr<PredictReply> first_reply = ParsePredictReply(*first);
  ASSERT_TRUE(first_reply.ok()) << first_reply.status().ToString();
  EXPECT_EQ(first_reply->label, bundle.expected[0]);

  std::thread stopper([&] { server->Stop(); });
  for (int i = 1; i < n; ++i) {
    const StatusOr<std::string> payload = client.Recv();
    ASSERT_TRUE(payload.ok())
        << "response " << i << " dropped by Stop(): "
        << payload.status().ToString();
    const StatusOr<PredictReply> reply = ParsePredictReply(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->label, bundle.expected[i]) << "position " << i;
  }
  stopper.join();
}

}  // namespace
}  // namespace gbx
