// Oracle battery for the src/simd kernels: walks EVERY dispatch path
// the host can run (forced via GBX_SIMD + ReresolveFromEnvForTest,
// skipping unsupported levels) and demands bit-exact equality against
// an independent scalar reference — computed here with the same
// sequential dimension-order arithmetic the contract in simd/simd.h
// promises. Comparisons go through the raw uint64 bits so NaN payloads
// and signed zeros count; grids include remainder-lane shapes
// (n % kSoaBlock != 0), awkward dimensions, partial [begin, end)
// ranges, and NaN/inf rows placed inside the SoA tail block.
#include "simd/simd.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace gbx {
namespace simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Blocks constant folding: inf - inf folded at compile time yields
/// +qNaN while the runtime x86 subtraction yields the "real indefinite"
/// -qNaN — the oracle must do the SAME runtime arithmetic the kernels
/// do, so every injected special value passes through here.
double Opaque(double x) {
  volatile double v = x;
  return v;
}

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// The contract from simd/simd.h, verbatim: identical bits for every
/// non-NaN value (covers signed zeros and infinities); NaN outputs must
/// be NaN everywhere, but the payload/sign is unspecified — the
/// compiler may commute `a + b` and IEEE leaves which operand's NaN
/// propagates to the implementation.
::testing::AssertionResult BitSame(double a, double b) {
  if (Bits(a) == Bits(b)) return ::testing::AssertionSuccess();
  if (std::isnan(a) && std::isnan(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << std::hex << "0x" << Bits(a) << " (" << a << ") vs 0x" << Bits(b)
         << " (" << b << ")";
}

#define EXPECT_BIT_EQ(a, b) EXPECT_TRUE(BitSame((a), (b)))
#define ASSERT_BIT_EQ(a, b) ASSERT_TRUE(BitSame((a), (b)))

const std::vector<Level>& AllLevels() {
  static const std::vector<Level> kLevels = {Level::kScalar, Level::kNeon,
                                             Level::kAvx2, Level::kAvx512};
  return kLevels;
}

// Saves GBX_SIMD on construction, restores it (and re-resolves the
// dispatch cache) on destruction so one test's forced level never
// leaks into the next.
class ScopedSimdEnv {
 public:
  ScopedSimdEnv() {
    const char* prev = std::getenv("GBX_SIMD");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
  }
  ~ScopedSimdEnv() {
    if (had_prev_) {
      ::setenv("GBX_SIMD", prev_.c_str(), 1);
    } else {
      ::unsetenv("GBX_SIMD");
    }
    ReresolveFromEnvForTest();
  }

  /// Forces `level` through the same env + resolution path production
  /// code uses. Returns false (test should skip the level) when the
  /// host cannot run it.
  bool Force(Level level) {
    if (!Supported(level)) return false;
    ::setenv("GBX_SIMD", LevelName(level), 1);
    ReresolveFromEnvForTest();
    EXPECT_EQ(Active(), level);
    return true;
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

// The independent scalar oracle: plain row-major data, the exact
// sequential fold the kernels promise. Deliberately NOT the kernels.h
// helpers — a shared-helper bug must not cancel out.
double RefSquaredDistance(const double* q, const double* row, int d) {
  double s = 0.0;
  for (int j = 0; j < d; ++j) {
    const double diff = q[j] - row[j];
    s += diff * diff;
  }
  return s;
}

double RefSurfaceGap(const double* q, const double* row, double r, int d) {
  return std::sqrt(RefSquaredDistance(q, row, d)) - r;
}

double RefSurfaceScore(const double* q, const double* row, double r, int d) {
  const double dist = std::sqrt(RefSquaredDistance(q, row, d));
  return dist <= r ? dist - r : dist;
}

struct Case {
  int n;
  int d;
  Matrix rows;                // row-major oracle copy
  SoaMatrix soa;              // what the kernels see
  std::vector<double> radii;  // mixed sign/scale, some zero
  std::vector<double> q;
};

/// `specials` sprinkles NaN/inf into the data — including rows in the
/// final partial SoA block and into q — to prove propagation matches.
Case MakeCase(int n, int d, bool specials, std::uint64_t seed) {
  Case c;
  c.n = n;
  c.d = d;
  Pcg32 rng(seed);
  c.rows = Matrix(n, d, 0.0);
  c.soa = SoaMatrix(d);
  c.radii.resize(n);
  c.q.resize(d);
  for (int j = 0; j < d; ++j) c.q[j] = rng.NextGaussian() * 3.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      c.rows.Row(i)[j] = rng.NextGaussian() * (1.0 + j);
    }
    // Zero radius and tiny/huge radii hit both branches of the score
    // ternary; negative radii are legal inputs to the arithmetic.
    const double pick = rng.NextDouble();
    c.radii[i] = pick < 0.1 ? 0.0 : (pick < 0.2 ? -0.5 : rng.NextDouble() * 4);
  }
  if (specials) {
    // One special row early, one inside the remainder block (when the
    // shape has one), so both the vector path and the per-lane tail
    // path chew on non-finite input.
    c.rows.Row(0)[0] = Opaque(kNan);
    c.rows.Row(n / 2)[d - 1] = Opaque(kInf);
    const int tail_begin = (n / kSoaBlock) * kSoaBlock;
    if (tail_begin < n) c.rows.Row(n - 1)[0] = Opaque(-kInf);
    if (d >= 2) c.q[1] = Opaque(kInf);  // inf - inf = NaN vs the inf rows
    c.radii[n / 2] = Opaque(kInf);      // inf - inf in the gap/score path
  }
  for (int i = 0; i < n; ++i) c.soa.AppendRow(c.rows.Row(i));
  return c;
}

// Shapes: remainder lanes (n % 8 != 0) everywhere plus exact block
// multiples; d crosses every unroll boundary the kernels care about.
const int kNs[] = {1, 2, 3, 7, 8, 9, 13, 16, 23, 31, 64};
const int kDs[] = {1, 2, 3, 7, 8, 9, 15, 16, 17};

/// [begin, end) subranges for a given n: full, head-clipped,
/// tail-clipped, both, single row, empty.
std::vector<std::pair<int, int>> Ranges(int n) {
  std::vector<std::pair<int, int>> r = {{0, n}};
  if (n >= 2) {
    r.push_back({1, n});
    r.push_back({0, n - 1});
    r.push_back({n / 3, n - n / 4});
    r.push_back({n - 1, n});
  }
  r.push_back({n / 2, n / 2});  // empty
  if (n > kSoaBlock) {
    // Ranges whose interior contains whole aligned blocks plus ragged
    // head and tail lanes.
    r.push_back({3, n - 2});
    r.push_back({kSoaBlock, n});
    r.push_back({0, kSoaBlock + 1});
  }
  return r;
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  for (Level level : AllLevels()) {
    Level parsed = Level::kScalar;
    EXPECT_TRUE(ParseLevel(LevelName(level), &parsed)) << LevelName(level);
    EXPECT_EQ(parsed, level);
  }
  Level out = Level::kAvx2;
  EXPECT_FALSE(ParseLevel("auto", &out));
  EXPECT_FALSE(ParseLevel("AVX2", &out));
  EXPECT_FALSE(ParseLevel("", &out));
  EXPECT_EQ(out, Level::kAvx2);  // untouched on failure
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(Compiled(Level::kScalar));
  EXPECT_TRUE(Supported(Level::kScalar));
  EXPECT_TRUE(Supported(Active()));
}

TEST(SimdDispatchTest, SupportedImpliesCompiled) {
  for (Level level : AllLevels()) {
    if (Supported(level)) {
      EXPECT_TRUE(Compiled(level)) << LevelName(level);
    }
  }
}

TEST(SimdDispatchTest, ResolvePicksBestSupported) {
  Level best = Level::kScalar;
  for (Level level : AllLevels()) {
    if (Supported(level)) best = level;  // AllLevels is preference-ordered
  }
  EXPECT_EQ(ResolveLevel(nullptr), best);
  EXPECT_EQ(ResolveLevel(""), best);
  EXPECT_EQ(ResolveLevel("auto"), best);
  EXPECT_EQ(ResolveLevel("definitely-not-an-isa"), best);
}

TEST(SimdDispatchTest, UnsupportedRequestFallsBackBelow) {
  // Requesting any level resolves to a supported one; when the request
  // itself is unsupported, resolution must land strictly below it.
  for (Level level : AllLevels()) {
    const Level got = ResolveLevel(LevelName(level));
    EXPECT_TRUE(Supported(got)) << LevelName(level);
    if (Supported(level)) {
      EXPECT_EQ(got, level);
    } else {
      EXPECT_LT(static_cast<int>(got), static_cast<int>(level))
          << LevelName(level);
    }
  }
}

TEST(SimdDispatchTest, EnvOverrideRoundTripsThroughResolver) {
  ScopedSimdEnv env;
  for (Level level : AllLevels()) {
    ::setenv("GBX_SIMD", LevelName(level), 1);
    ReresolveFromEnvForTest();
    EXPECT_EQ(Active(), ResolveLevel(LevelName(level))) << LevelName(level);
    EXPECT_STREQ(ActiveName(), LevelName(Active()));
  }
  // Garbage and "auto" both land on the best supported level — and the
  // process keeps serving rather than dying on a bad env var.
  ::setenv("GBX_SIMD", "garbage", 1);
  ReresolveFromEnvForTest();
  EXPECT_EQ(Active(), ResolveLevel(nullptr));
}

TEST(SimdDispatchTest, SetLevelForTestSwitchesActive) {
  ScopedSimdEnv env;
  for (Level level : AllLevels()) {
    if (!Supported(level)) continue;
    SetLevelForTest(level);
    EXPECT_EQ(Active(), level);
  }
}

class SimdKernelOracleTest : public ::testing::Test {
 protected:
  // Runs `body(case)` under every supported dispatch level for every
  // (n, d, specials) shape. The reference never depends on the forced
  // level, so any cross-level drift fails loudly.
  template <typename Body>
  void ForAllLevelsAndShapes(Body body) {
    ScopedSimdEnv env;
    int levels_run = 0;
    for (Level level : AllLevels()) {
      if (!env.Force(level)) {
        LogSkip(level);
        continue;
      }
      ++levels_run;
      for (int n : kNs) {
        for (int d : kDs) {
          for (bool specials : {false, true}) {
            // Seed depends on shape only: every level sees the SAME
            // data, so the oracle values can be compared across levels
            // too (transitively, via the shared reference).
            const std::uint64_t seed =
                0x5eedULL * 1000003ULL + n * 131ULL + d * 7ULL + specials;
            const Case c = MakeCase(n, d, specials, seed);
            body(c);
            if (HasFailure()) {
              ADD_FAILURE() << "level=" << LevelName(level) << " n=" << n
                            << " d=" << d << " specials=" << specials;
              return;
            }
          }
        }
      }
    }
    // Scalar is unconditionally supported: at least one path must run.
    EXPECT_GE(levels_run, 1);
  }

  static void LogSkip(Level level) {
    std::fprintf(stderr, "[ skipped ] level %s not supported on this host\n",
                 LevelName(level));
  }
};

TEST_F(SimdKernelOracleTest, SquaredDistanceBatchBitExact) {
  ForAllLevelsAndShapes([](const Case& c) {
    for (auto [begin, end] : Ranges(c.n)) {
      // Canary-fill so absolute indexing (and untouched slots outside
      // [begin, end)) is verified, not assumed.
      std::vector<double> out(c.n, -7777.25);
      SquaredDistanceBatch(c.q.data(), c.soa, begin, end, out.data());
      for (int i = 0; i < c.n; ++i) {
        if (i >= begin && i < end) {
          EXPECT_BIT_EQ(out[i],
                        RefSquaredDistance(c.q.data(), c.rows.Row(i), c.d))
              << "i=" << i << " range=[" << begin << "," << end << ")";
        } else {
          EXPECT_BIT_EQ(out[i], -7777.25) << "clobbered i=" << i;
        }
        if (::testing::Test::HasFailure()) return;
      }
    }
  });
}

TEST_F(SimdKernelOracleTest, MinSurfaceGapBitExact) {
  ForAllLevelsAndShapes([](const Case& c) {
    for (auto [begin, end] : Ranges(c.n)) {
      double ref = kInf;
      for (int i = begin; i < end; ++i) {
        // The scalar fold: NaN gaps drop out (comparison is false).
        ref = std::min(
            ref, RefSurfaceGap(c.q.data(), c.rows.Row(i), c.radii[i], c.d));
      }
      const double got =
          MinSurfaceGap(c.q.data(), c.soa, c.radii.data(), begin, end);
      EXPECT_BIT_EQ(got, ref) << "range=[" << begin << "," << end << ")";
      if (::testing::Test::HasFailure()) return;
    }
  });
}

TEST_F(SimdKernelOracleTest, SurfaceScoresBitExact) {
  ForAllLevelsAndShapes([](const Case& c) {
    for (auto [begin, end] : Ranges(c.n)) {
      std::vector<double> out(c.n, -7777.25);
      SurfaceScores(c.q.data(), c.soa, c.radii.data(), begin, end, out.data());
      for (int i = 0; i < c.n; ++i) {
        if (i >= begin && i < end) {
          EXPECT_BIT_EQ(out[i], RefSurfaceScore(c.q.data(), c.rows.Row(i),
                                                c.radii[i], c.d))
              << "i=" << i << " range=[" << begin << "," << end << ")";
        } else {
          EXPECT_BIT_EQ(out[i], -7777.25) << "clobbered i=" << i;
        }
        if (::testing::Test::HasFailure()) return;
      }
    }
  });
}

// All-NaN / all-inf stress: every row non-finite, so the whole vector
// path (not just one poisoned lane) exercises IEEE propagation.
TEST_F(SimdKernelOracleTest, NonFiniteEverywhere) {
  ScopedSimdEnv env;
  for (Level level : AllLevels()) {
    if (!env.Force(level)) continue;
    const int n = 13;  // one full block + 5-lane tail
    const int d = 4;
    Matrix rows(n, d, 0.0);
    SoaMatrix soa(d);
    std::vector<double> radii(n, 1.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) {
        rows.Row(i)[j] =
            Opaque((i % 3 == 0) ? kNan : (i % 3 == 1 ? kInf : -kInf));
      }
      soa.AppendRow(rows.Row(i));
    }
    const std::vector<double> q = {Opaque(kInf), 0.0, -1.0, Opaque(kNan)};
    std::vector<double> d2(n), scores(n);
    SquaredDistanceBatch(q.data(), soa, 0, n, d2.data());
    SurfaceScores(q.data(), soa, radii.data(), 0, n, scores.data());
    double ref_min = kInf;
    for (int i = 0; i < n; ++i) {
      ASSERT_BIT_EQ(d2[i], RefSquaredDistance(q.data(), rows.Row(i), d))
          << LevelName(level) << " i=" << i;
      ASSERT_BIT_EQ(scores[i],
                    RefSurfaceScore(q.data(), rows.Row(i), radii[i], d))
          << LevelName(level) << " i=" << i;
      ref_min =
          std::min(ref_min, RefSurfaceGap(q.data(), rows.Row(i), radii[i], d));
    }
    ASSERT_BIT_EQ(MinSurfaceGap(q.data(), soa, radii.data(), 0, n), ref_min)
        << LevelName(level);
  }
}

// GatherRows is the production tiling path (rd_gbg candidate fill):
// scattered indices, reused buffer (Clear keeps capacity), ragged tail.
TEST_F(SimdKernelOracleTest, GatherRowsTilesBitExact) {
  ScopedSimdEnv env;
  Pcg32 rng(20260808);
  const int d = 9;
  const int total = 57;
  Matrix base(total, d, 0.0);
  for (int i = 0; i < total; ++i) {
    for (int j = 0; j < d; ++j) base.Row(i)[j] = rng.NextGaussian();
  }
  std::vector<double> q(d);
  for (int j = 0; j < d; ++j) q[j] = rng.NextGaussian();
  std::vector<int> idx(total);
  for (int i = 0; i < total; ++i) idx[i] = i;
  rng.Shuffle(&idx);
  for (Level level : AllLevels()) {
    if (!env.Force(level)) continue;
    SoaMatrix tile;  // reused across tiles, like the hot loop does
    std::vector<double> d2;
    for (int tile_size : {5, 8, 11, 16, 57}) {
      for (int t = 0; t < total; t += tile_size) {
        const int cnt = std::min(tile_size, total - t);
        tile.GatherRows(base, idx.data() + t, cnt);
        ASSERT_EQ(tile.rows(), cnt);
        d2.assign(cnt, -1.0);
        SquaredDistanceBatch(q.data(), tile, 0, cnt, d2.data());
        for (int r = 0; r < cnt; ++r) {
          ASSERT_BIT_EQ(d2[r],
                        RefSquaredDistance(q.data(), base.Row(idx[t + r]), d))
              << LevelName(level) << " tile_size=" << tile_size << " t=" << t
              << " r=" << r;
        }
      }
    }
  }
}

// The promise the whole PR rests on: outputs are identical ACROSS
// levels, not just each-vs-reference — checked directly for the level
// pairs the host supports.
TEST_F(SimdKernelOracleTest, CrossLevelIdentical) {
  ScopedSimdEnv env;
  const Case c = MakeCase(31, 17, /*specials=*/true, 0xc0ffee);
  std::vector<std::pair<Level, std::vector<double>>> per_level;
  std::vector<std::pair<Level, double>> gaps;
  for (Level level : AllLevels()) {
    if (!env.Force(level)) continue;
    std::vector<double> scores(c.n, 0.0);
    SurfaceScores(c.q.data(), c.soa, c.radii.data(), 0, c.n, scores.data());
    per_level.emplace_back(level, std::move(scores));
    gaps.emplace_back(level,
                      MinSurfaceGap(c.q.data(), c.soa, c.radii.data(), 0, c.n));
  }
  ASSERT_GE(per_level.size(), 1u);
  for (std::size_t l = 1; l < per_level.size(); ++l) {
    for (int i = 0; i < c.n; ++i) {
      ASSERT_BIT_EQ(per_level[l].second[i], per_level[0].second[i])
          << LevelName(per_level[l].first) << " vs "
          << LevelName(per_level[0].first) << " i=" << i;
    }
    ASSERT_BIT_EQ(gaps[l].second, gaps[0].second);
  }
}

TEST(SimdKernelEdgeTest, EmptyRangeContracts) {
  // +inf for an empty gap scan; batch/scores with begin==end touch
  // nothing (nullptr out must be safe for an empty range).
  SoaMatrix m(3);
  const double q[3] = {0, 0, 0};
  EXPECT_BIT_EQ(MinSurfaceGap(q, m, nullptr, 0, 0), kInf);
  SquaredDistanceBatch(q, m, 0, 0, nullptr);
  SurfaceScores(q, m, nullptr, 0, 0, nullptr);
}

}  // namespace
}  // namespace simd
}  // namespace gbx
