#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "sampling/borderline_smote.h"
#include "sampling/smote.h"
#include "sampling/smotenc.h"

namespace gbx {
namespace {

Dataset ImbalancedBlobs(int n, std::uint64_t seed, double ir = 4.0) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = 2;
  cfg.num_features = 3;
  cfg.class_weights = {ir, 1.0};
  cfg.center_spread = 4.0;
  cfg.cluster_std = 1.0;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(SmoteTest, BalancesAllClassesToMajority) {
  const Dataset ds = ImbalancedBlobs(300, 1);
  SmoteSampler smote;
  Pcg32 rng(2);
  const Dataset out = smote.Sample(ds, &rng);
  const std::vector<int> counts = out.ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
  const std::vector<int> original_counts = ds.ClassCounts();
  EXPECT_EQ(counts[0], *std::max_element(original_counts.begin(),
                                         original_counts.end()));
}

TEST(SmoteTest, OriginalSamplesPreservedAsPrefix) {
  const Dataset ds = ImbalancedBlobs(200, 3);
  SmoteSampler smote;
  Pcg32 rng(4);
  const Dataset out = smote.Sample(ds, &rng);
  ASSERT_GE(out.size(), ds.size());
  for (int i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(out.label(i), ds.label(i));
    for (int j = 0; j < ds.num_features(); ++j) {
      EXPECT_DOUBLE_EQ(out.feature(i, j), ds.feature(i, j));
    }
  }
}

TEST(SmoteTest, SyntheticSamplesInsideMinorityBoundingBox) {
  const Dataset ds = ImbalancedBlobs(300, 5);
  SmoteSampler smote;
  Pcg32 rng(6);
  const Dataset out = smote.Sample(ds, &rng);
  // Bounding box of the minority class in the original data.
  std::vector<double> lo(ds.num_features(), 1e300);
  std::vector<double> hi(ds.num_features(), -1e300);
  for (int idx : ds.IndicesOfClass(1)) {
    for (int j = 0; j < ds.num_features(); ++j) {
      lo[j] = std::min(lo[j], ds.feature(idx, j));
      hi[j] = std::max(hi[j], ds.feature(idx, j));
    }
  }
  for (int i = ds.size(); i < out.size(); ++i) {
    EXPECT_EQ(out.label(i), 1);  // only the minority gets synthesized
    for (int j = 0; j < ds.num_features(); ++j) {
      EXPECT_GE(out.feature(i, j), lo[j] - 1e-9);
      EXPECT_LE(out.feature(i, j), hi[j] + 1e-9);
    }
  }
}

TEST(SmoteTest, MultiClassOversamplesEveryMinority) {
  BlobsConfig cfg;
  cfg.num_samples = 300;
  cfg.num_classes = 3;
  cfg.class_weights = {6, 2, 1};
  Pcg32 gen(7);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  SmoteSampler smote;
  Pcg32 rng(8);
  const std::vector<int> counts = smote.Sample(ds, &rng).ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
}

TEST(SmoteTest, BalancedInputUnchanged) {
  BlobsConfig cfg;
  cfg.num_samples = 100;
  cfg.num_classes = 2;
  Pcg32 gen(9);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  SmoteSampler smote;
  Pcg32 rng(10);
  EXPECT_EQ(smote.Sample(ds, &rng).size(), ds.size());
}

TEST(SmoteTest, LoneMinoritySampleDuplicates) {
  Matrix x = Matrix::FromRows(
      {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 2}, {10, 10}});
  const Dataset ds(std::move(x), {0, 0, 0, 0, 0, 1});
  SmoteSampler smote;
  Pcg32 rng(11);
  const Dataset out = smote.Sample(ds, &rng);
  const std::vector<int> counts = out.ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
  for (int i = ds.size(); i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.feature(i, 0), 10.0);
    EXPECT_DOUBLE_EQ(out.feature(i, 1), 10.0);
  }
}

TEST(BorderlineSmoteTest, DangerSetIsBorderlineOnly) {
  // 1-D layout: minority cluster far left, three minority points mixed
  // into the majority region. Interior minority points (surrounded by
  // same-class) must not be DANGER; mixed-region ones should be.
  Matrix x(16, 1);
  std::vector<int> y(16);
  // Minority interior cluster: 0..5 at x in [0, 0.5].
  for (int i = 0; i < 6; ++i) {
    x.At(i, 0) = 0.1 * i;
    y[i] = 1;
  }
  // Majority cluster: 6..13 at x in [5.0, 5.7].
  for (int i = 0; i < 8; ++i) {
    x.At(6 + i, 0) = 5.0 + 0.1 * i;
    y[6 + i] = 0;
  }
  // Borderline minority: 14, 15 sitting at the majority cluster's edge.
  x.At(14, 0) = 4.8;
  y[14] = 1;
  x.At(15, 0) = 4.9;
  y[15] = 1;
  const Dataset ds(std::move(x), std::move(y));

  BorderlineSmoteSampler bsm(/*m_neighbors=*/5);
  const std::vector<int> danger =
      bsm.DangerSamples(ds, ds.IndicesOfClass(1), 1);
  EXPECT_TRUE(std::find(danger.begin(), danger.end(), 14) != danger.end());
  EXPECT_TRUE(std::find(danger.begin(), danger.end(), 15) != danger.end());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(std::find(danger.begin(), danger.end(), i) == danger.end())
        << "interior minority sample " << i << " wrongly in DANGER";
  }
}

TEST(BorderlineSmoteTest, BalancesClasses) {
  const Dataset ds = ImbalancedBlobs(300, 12);
  BorderlineSmoteSampler bsm;
  Pcg32 rng(13);
  const std::vector<int> counts = bsm.Sample(ds, &rng).ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(SmotencTest, DetectsNominalColumns) {
  Matrix x = Matrix::FromRows({{0.5, 1, 3.25}, {1.5, 2, 4.75},
                               {2.5, 1, 5.5}, {3.5, 3, 6.25}});
  const Dataset ds(std::move(x), {0, 0, 1, 1});
  const std::vector<bool> nominal = SmotencSampler::DetectNominal(ds, 10);
  ASSERT_EQ(nominal.size(), 3u);
  EXPECT_FALSE(nominal[0]);  // fractional values
  EXPECT_TRUE(nominal[1]);   // small-integer column
  EXPECT_FALSE(nominal[2]);
}

TEST(SmotencTest, SyntheticNominalValuesComeFromExistingCategories) {
  // Feature 1 is nominal with values {1, 2, 3}.
  Pcg32 gen(14);
  Matrix x(60, 2);
  std::vector<int> y(60);
  for (int i = 0; i < 60; ++i) {
    x.At(i, 0) = gen.NextGaussian() + (i < 50 ? 0.0 : 5.0);
    x.At(i, 1) = 1 + static_cast<int>(gen.NextBounded(3));
    y[i] = i < 50 ? 0 : 1;
  }
  const Dataset ds(std::move(x), std::move(y));
  SmotencSampler smnc;
  Pcg32 rng(15);
  const Dataset out = smnc.Sample(ds, &rng);
  const std::vector<int> counts = out.ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
  for (int i = ds.size(); i < out.size(); ++i) {
    const double v = out.feature(i, 1);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0) << v;
  }
}

TEST(SmoteFamilyDeterminismTest, SameRngSameOutput) {
  const Dataset ds = ImbalancedBlobs(200, 16);
  SmoteSampler smote;
  Pcg32 a(17);
  Pcg32 b(17);
  const Dataset out_a = smote.Sample(ds, &a);
  const Dataset out_b = smote.Sample(ds, &b);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (int i = 0; i < out_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_a.feature(i, 0), out_b.feature(i, 0));
  }
}

}  // namespace
}  // namespace gbx
