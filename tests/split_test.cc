#include "data/split.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace gbx {
namespace {

Dataset MakeData(int n, int classes, std::uint64_t seed) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = classes;
  cfg.num_features = 3;
  Pcg32 rng(seed);
  return MakeGaussianBlobs(cfg, &rng);
}

TEST(TrainTestSplitTest, SizesAndDisjointness) {
  const Dataset ds = MakeData(100, 2, 1);
  Pcg32 rng(2);
  const TrainTestSplitResult split = TrainTestSplit(ds, 0.25, &rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 100);
  EXPECT_NEAR(split.test.size(), 25, 2);
  std::set<int> seen(split.train_indices.begin(), split.train_indices.end());
  for (int idx : split.test_indices) {
    EXPECT_EQ(seen.count(idx), 0u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(TrainTestSplitTest, StratificationPreservesProportions) {
  BlobsConfig cfg;
  cfg.num_samples = 300;
  cfg.num_classes = 3;
  cfg.class_weights = {6, 3, 1};
  Pcg32 gen_rng(3);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen_rng);
  Pcg32 rng(4);
  const TrainTestSplitResult split = TrainTestSplit(ds, 0.3, &rng);
  const std::vector<int> full = ds.ClassCounts();
  const std::vector<int> test = split.test.ClassCounts();
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(static_cast<double>(test[c]) / split.test.size(),
                static_cast<double>(full[c]) / ds.size(), 0.03);
  }
}

class StratifiedKFoldParamTest : public ::testing::TestWithParam<int> {};

TEST_P(StratifiedKFoldParamTest, FoldsPartitionTheDataset) {
  const int k = GetParam();
  const Dataset ds = MakeData(103, 3, 7);  // deliberately not divisible
  Pcg32 rng(8);
  const std::vector<std::vector<int>> folds = StratifiedKFold(ds, k, &rng);
  ASSERT_EQ(static_cast<int>(folds.size()), k);
  std::set<int> all;
  for (const auto& fold : folds) {
    for (int idx : fold) {
      EXPECT_TRUE(all.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(static_cast<int>(all.size()), ds.size());
  // Fold sizes within 1 of each other per class implies totals within q.
  int min_size = ds.size();
  int max_size = 0;
  for (const auto& fold : folds) {
    min_size = std::min(min_size, static_cast<int>(fold.size()));
    max_size = std::max(max_size, static_cast<int>(fold.size()));
  }
  EXPECT_LE(max_size - min_size, ds.num_classes());
}

TEST_P(StratifiedKFoldParamTest, EachFoldIsStratified) {
  const int k = GetParam();
  const Dataset ds = MakeData(200, 2, 9);
  Pcg32 rng(10);
  const std::vector<std::vector<int>> folds = StratifiedKFold(ds, k, &rng);
  const std::vector<int> totals = ds.ClassCounts();
  for (const auto& fold : folds) {
    std::vector<int> counts(ds.num_classes(), 0);
    for (int idx : fold) ++counts[ds.label(idx)];
    for (int c = 0; c < ds.num_classes(); ++c) {
      // Per-class fold share can deviate from totals/k by at most 1.
      EXPECT_NEAR(counts[c], static_cast<double>(totals[c]) / k, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Folds, StratifiedKFoldParamTest,
                         ::testing::Values(2, 3, 5, 10));

TEST(FoldComplementTest, ComplementCoversRest) {
  const std::vector<int> fold = {1, 3, 5};
  const std::vector<int> rest = FoldComplement(fold, 7);
  EXPECT_EQ(rest, (std::vector<int>{0, 2, 4, 6}));
}

TEST(FoldComplementTest, EmptyFold) {
  const std::vector<int> rest = FoldComplement({}, 3);
  EXPECT_EQ(rest, (std::vector<int>{0, 1, 2}));
}

TEST(SplitDeterminismTest, SameSeedSameFolds) {
  const Dataset ds = MakeData(60, 2, 11);
  Pcg32 rng1(12);
  Pcg32 rng2(12);
  EXPECT_EQ(StratifiedKFold(ds, 5, &rng1), StratifiedKFold(ds, 5, &rng2));
}

}  // namespace
}  // namespace gbx
