#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/kde.h"
#include "stats/ranking.h"
#include "stats/wilcoxon.h"

namespace gbx {
namespace {

TEST(DescriptiveTest, MeanStd) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(DescriptiveTest, Quantiles) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({0, 10}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3}, 1.0), 3.0);
}

TEST(WilcoxonTest, ExactTieFreeExample) {
  // Differences {6, -1, 2, 3, 4}: ranks of |d| are {5, 1, 2, 3, 4}, so
  // W- = 1 and the exact two-sided p = 2 * P(W <= 1) = 2 * 2/32 = 0.125
  // (matches scipy.stats.wilcoxon(..., mode='exact')).
  const std::vector<double> a = {16, 9, 12, 13, 14};
  const std::vector<double> b = {10, 10, 10, 10, 10};
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.n_effective, 5);
  EXPECT_DOUBLE_EQ(result.w_minus, 1.0);
  EXPECT_DOUBLE_EQ(result.w_plus, 14.0);
  EXPECT_NEAR(result.p_value, 0.125, 1e-12);
}

TEST(WilcoxonTest, TiedExampleMatchesNormalApproximation) {
  // Classic blood-pressure example with one zero difference and a tied
  // pair of |d| = 5: W = 18, n = 9; the tie-corrected normal
  // approximation with continuity correction gives p ~ 0.6353.
  const std::vector<double> a = {125, 115, 130, 140, 140, 115, 140, 125,
                                 140, 135};
  const std::vector<double> b = {110, 122, 125, 120, 140, 124, 123, 137,
                                 135, 145};
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_FALSE(result.exact);  // ties force the approximation
  EXPECT_EQ(result.n_effective, 9);
  EXPECT_DOUBLE_EQ(std::min(result.w_plus, result.w_minus), 18.0);
  EXPECT_NEAR(result.p_value, 0.6353, 0.001);
}

TEST(WilcoxonTest, StronglyOneSidedIsSignificant) {
  std::vector<double> a(13);
  std::vector<double> b(13);
  for (int i = 0; i < 13; ++i) {
    a[i] = 0.9 + 0.001 * i;
    b[i] = 0.8 + 0.0015 * i;  // a > b everywhere
  }
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.n_effective, 13);
  EXPECT_DOUBLE_EQ(result.w_minus, 0.0);
  // All 13 positive: p = 2 * 2^-13 = 0.000244 — the value in Table III.
  EXPECT_NEAR(result.p_value, 0.000244, 1e-5);
  EXPECT_LT(result.p_value, 0.05);
}

TEST(WilcoxonTest, IdenticalSamplesPValueOne) {
  const std::vector<double> a = {1, 2, 3};
  const WilcoxonResult result = WilcoxonSignedRank(a, a);
  EXPECT_EQ(result.n_effective, 0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(WilcoxonTest, SymmetricDifferencesNotSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> b = {2, 1, 4, 3, 6, 5};  // alternating +-1
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_GT(result.p_value, 0.5);
}

TEST(WilcoxonTest, TiesFallBackToNormalApproximation) {
  // All |differences| equal: maximal ties.
  std::vector<double> a(30, 1.0);
  std::vector<double> b(30, 0.0);
  const WilcoxonResult result = WilcoxonSignedRank(a, b);
  EXPECT_FALSE(result.exact);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(KdeTest, IntegratesToRoughlyOne) {
  const std::vector<double> samples = {0.1, 0.2, 0.25, 0.4, 0.5, 0.55, 0.7};
  const int kPoints = 2001;
  const double lo = -1.0;
  const double hi = 2.0;
  const std::vector<double> curve = KdeCurve(samples, lo, hi, kPoints);
  double integral = 0.0;
  const double step = (hi - lo) / (kPoints - 1);
  for (double v : curve) integral += v * step;
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, PeaksNearData) {
  const std::vector<double> samples = {0.5, 0.5, 0.51, 0.49};
  EXPECT_GT(KdeDensity(samples, 0.5), KdeDensity(samples, 0.9));
}

TEST(KdeTest, BandwidthPositiveEvenForConstantData) {
  EXPECT_GT(SilvermanBandwidth({1.0, 1.0, 1.0}), 0.0);
}

TEST(RankingTest, DescendingCompetitionRanks) {
  EXPECT_EQ(CompetitionRankDescending({0.9, 0.7, 0.8}),
            (std::vector<int>{1, 3, 2}));
}

TEST(RankingTest, TiesShareRankAndSkip) {
  EXPECT_EQ(CompetitionRankDescending({0.9, 0.9, 0.8, 0.7}),
            (std::vector<int>{1, 1, 3, 4}));
}

TEST(RankingTest, MeanRanks) {
  const std::vector<std::vector<double>> scores = {{0.9, 0.8}, {0.7, 0.95}};
  const std::vector<double> mean = MeanRanks(scores);
  EXPECT_DOUBLE_EQ(mean[0], 1.5);
  EXPECT_DOUBLE_EQ(mean[1], 1.5);
}

}  // namespace
}  // namespace gbx
