#include "common/status.h"

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusCodeNameTest, Names) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  GBX_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfError) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  const Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace gbx
