#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/paper_suite.h"

namespace gbx {
namespace {

TEST(ClassCountsFromWeightsTest, BalancedByDefault) {
  const std::vector<int> counts = ClassCountsFromWeights(100, 4, {});
  int total = 0;
  for (int c : counts) {
    EXPECT_NEAR(c, 25, 1);
    total += c;
  }
  EXPECT_EQ(total, 100);
}

TEST(ClassCountsFromWeightsTest, WeightsRespected) {
  const std::vector<int> counts = ClassCountsFromWeights(100, 2, {3, 1});
  EXPECT_EQ(counts[0] + counts[1], 100);
  EXPECT_NEAR(counts[0], 75, 1);
}

TEST(ClassCountsFromWeightsTest, EveryClassGetsAtLeastOne) {
  const std::vector<int> counts =
      ClassCountsFromWeights(50, 3, {1000, 1, 1});
  EXPECT_GE(counts[1], 1);
  EXPECT_GE(counts[2], 1);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 50);
}

TEST(GeometricWeightsTest, EndpointsMatchImbalanceRatio) {
  for (double ir : {1.5, 10.0, 175.46, 4558.6}) {
    for (int q : {2, 5, 7}) {
      const std::vector<double> w = GeometricWeights(q, ir);
      EXPECT_NEAR(w.front() / w.back(), ir, ir * 1e-9);
      for (std::size_t i = 1; i < w.size(); ++i) {
        EXPECT_LE(w[i], w[i - 1]);  // monotone ladder
      }
    }
  }
}

TEST(BlobsTest, ShapeAndLabels) {
  BlobsConfig cfg;
  cfg.num_samples = 200;
  cfg.num_features = 5;
  cfg.num_classes = 3;
  Pcg32 rng(1);
  const Dataset ds = MakeGaussianBlobs(cfg, &rng);
  EXPECT_EQ(ds.size(), 200);
  EXPECT_EQ(ds.num_features(), 5);
  EXPECT_EQ(ds.num_classes(), 3);
  for (int c : ds.ClassCounts()) EXPECT_GT(c, 0);
}

TEST(BlobsTest, Deterministic) {
  BlobsConfig cfg;
  cfg.num_samples = 50;
  Pcg32 rng1(2);
  Pcg32 rng2(2);
  const Dataset a = MakeGaussianBlobs(cfg, &rng1);
  const Dataset b = MakeGaussianBlobs(cfg, &rng2);
  EXPECT_EQ(a.y(), b.y());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.feature(i, 0), b.feature(i, 0));
  }
}

TEST(BlobsTest, WellSeparatedBlobsAreCompact) {
  BlobsConfig cfg;
  cfg.num_samples = 300;
  cfg.num_classes = 2;
  cfg.center_spread = 20.0;
  cfg.cluster_std = 0.5;
  Pcg32 rng(3);
  const Dataset ds = MakeGaussianBlobs(cfg, &rng);
  // Mean intra-class distance should be far below inter-class distance.
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (int i = 0; i < ds.size(); i += 7) {
    for (int j = i + 1; j < ds.size(); j += 7) {
      const double d =
          EuclideanDistance(ds.row(i), ds.row(j), ds.num_features());
      if (ds.label(i) == ds.label(j)) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  ASSERT_GT(intra_n, 0);
  ASSERT_GT(inter_n, 0);
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

TEST(BananaTest, TwoDimensionalTwoClasses) {
  BananaConfig cfg;
  cfg.num_samples = 500;
  Pcg32 rng(4);
  const Dataset ds = MakeBanana(cfg, &rng);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.size(), 500);
}

TEST(BananaTest, ImbalanceRespected) {
  BananaConfig cfg;
  cfg.num_samples = 400;
  cfg.class_weights = {3, 1};
  Pcg32 rng(5);
  const Dataset ds = MakeBanana(cfg, &rng);
  EXPECT_NEAR(ds.ImbalanceRatio(), 3.0, 0.1);
}

TEST(RingsTest, RadiiIncreaseWithClass) {
  RingsConfig cfg;
  cfg.num_samples = 600;
  cfg.num_classes = 3;
  cfg.noise_std = 0.05;
  Pcg32 rng(6);
  const Dataset ds = MakeConcentricRings(cfg, &rng);
  std::vector<double> mean_radius(3, 0.0);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < ds.size(); ++i) {
    const double r = std::hypot(ds.feature(i, 0), ds.feature(i, 1));
    mean_radius[ds.label(i)] += r;
    ++counts[ds.label(i)];
  }
  for (int c = 0; c < 3; ++c) mean_radius[c] /= counts[c];
  EXPECT_LT(mean_radius[0], mean_radius[1]);
  EXPECT_LT(mean_radius[1], mean_radius[2]);
}

TEST(HighDimTest, NoiseDimensionsCarryNoSignal) {
  HighDimConfig cfg;
  cfg.num_samples = 400;
  cfg.num_features = 20;
  cfg.num_informative = 4;
  cfg.class_sep = 3.0;
  Pcg32 rng(7);
  const Dataset ds = MakeInformativeHighDim(cfg, &rng);
  // Class-mean gap in informative dims should dwarf the gap in noise dims.
  auto mean_gap = [&](int j) {
    double m0 = 0.0;
    double m1 = 0.0;
    int n0 = 0;
    int n1 = 0;
    for (int i = 0; i < ds.size(); ++i) {
      if (ds.label(i) == 0) {
        m0 += ds.feature(i, j);
        ++n0;
      } else {
        m1 += ds.feature(i, j);
        ++n1;
      }
    }
    return std::fabs(m0 / n0 - m1 / n1);
  };
  double info_gap = 0.0;
  for (int j = 0; j < 4; ++j) info_gap = std::max(info_gap, mean_gap(j));
  double noise_gap = 0.0;
  for (int j = 4; j < 20; ++j) noise_gap = std::max(noise_gap, mean_gap(j));
  EXPECT_GT(info_gap, 3 * noise_gap);
}

TEST(PaperSuiteTest, ThirteenSpecsMatchTableOne) {
  const auto& specs = PaperDatasetSpecs();
  ASSERT_EQ(specs.size(), 13u);
  EXPECT_EQ(specs[0].name, "Credit Approval");
  EXPECT_EQ(specs[4].id, "S5");
  EXPECT_EQ(specs[4].features, 2);
  EXPECT_EQ(specs[10].samples, 58000);
  EXPECT_NEAR(specs[10].imbalance_ratio, 4558.6, 1e-9);
  EXPECT_EQ(specs[12].classes, 10);
}

class PaperDatasetParamTest : public ::testing::TestWithParam<int> {};

TEST_P(PaperDatasetParamTest, GeneratedDatasetMatchesSpec) {
  const int index = GetParam();
  const PaperDatasetSpec& spec = PaperDatasetSpecs()[index];
  const int cap = 800;
  const Dataset ds = MakePaperDataset(index, cap, /*seed=*/13);
  EXPECT_EQ(ds.size(), std::min(spec.samples, cap));
  EXPECT_EQ(ds.num_features(), spec.features);
  EXPECT_EQ(ds.num_classes(), spec.classes);
  for (int c : ds.ClassCounts()) EXPECT_GT(c, 0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PaperDatasetParamTest,
                         ::testing::Range(0, 13));

TEST(PaperSuiteTest, LookupById) {
  EXPECT_EQ(PaperSpecById("S7").features, 85);
  const Dataset ds = MakePaperDataset("S5", 300, 1);
  EXPECT_EQ(ds.num_features(), 2);
}

TEST(PaperSuiteTest, ImbalanceRoughlyMatchesSpecAtFullScale) {
  // S3: IR 18.62 with 4 classes at paper scale.
  const Dataset ds = MakePaperDataset(2, -1, 3);
  EXPECT_NEAR(ds.ImbalanceRatio(), 18.62, 4.0);
}

}  // namespace
}  // namespace gbx
