// Thread-count invariance: every parallelized algorithm must produce
// bit-identical output for any num_threads. Parallel loops only write to
// disjoint per-index slots and all reductions keep their sequential
// order, so 1 thread, 2 threads, and hardware concurrency must agree
// exactly — not approximately.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/dpc.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/rd_gbg.h"
#include "data/synthetic.h"
#include "ml/gb_knn.h"
#include "sampling/kmeans.h"
#include "serve/registry.h"
#include "serve_test_util.h"

namespace gbx {
namespace {

std::vector<int> ThreadCountsUnderTest() {
  // 0 resolves to GBX_THREADS / hardware concurrency; the explicit counts
  // force real multi-threaded execution even on a single-core machine
  // (the pool grows on demand).
  return {1, 2, 0, HardwareThreads() + 3};
}

Dataset OverlappingBlobs(int n) {
  BlobsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = 4;
  cfg.num_features = 6;
  cfg.clusters_per_class = 2;
  cfg.center_spread = 4.0;
  cfg.cluster_std = 1.1;
  Pcg32 rng(321);
  return MakeGaussianBlobs(cfg, &rng);
}

Dataset Banana(int n) {
  BananaConfig cfg;
  cfg.num_samples = n;
  cfg.noise_std = 0.2;
  Pcg32 rng(322);
  return MakeBanana(cfg, &rng);
}

Dataset Rings(int n) {
  RingsConfig cfg;
  cfg.num_samples = n;
  cfg.num_classes = 3;
  cfg.noise_std = 0.15;
  Pcg32 rng(323);
  return MakeConcentricRings(cfg, &rng);
}

Dataset HighDim(int n) {
  HighDimConfig cfg;
  cfg.num_samples = n;
  cfg.num_features = 24;
  cfg.num_informative = 6;
  cfg.num_classes = 3;
  cfg.class_sep = 0.8;
  Pcg32 rng(324);
  return MakeInformativeHighDim(cfg, &rng);
}

// Every field of the granulation must match bit-for-bit: balls (members,
// centers, radii, labels), noise, orphans, and the iteration count.
void ExpectIdenticalGranulation(const RdGbgResult& a, const RdGbgResult& b,
                                int threads) {
  ASSERT_EQ(a.balls.size(), b.balls.size()) << "threads=" << threads;
  for (int i = 0; i < a.balls.size(); ++i) {
    const GranularBall& ba = a.balls.ball(i);
    const GranularBall& bb = b.balls.ball(i);
    ASSERT_EQ(ba.members, bb.members) << "ball " << i << " threads=" << threads;
    ASSERT_EQ(ba.label, bb.label);
    ASSERT_EQ(ba.center_index, bb.center_index);
    ASSERT_EQ(ba.center, bb.center);  // exact double equality
    const double ra = ba.radius, rb = bb.radius;
    ASSERT_EQ(ra, rb) << "ball " << i << " threads=" << threads;
  }
  ASSERT_EQ(a.noise_indices, b.noise_indices) << "threads=" << threads;
  ASSERT_EQ(a.orphan_indices, b.orphan_indices) << "threads=" << threads;
  ASSERT_EQ(a.iterations, b.iterations) << "threads=" << threads;
}

Dataset PickDataset(int which) {
  return which == 0   ? OverlappingBlobs(900)
         : which == 1 ? Banana(800)
         : which == 2 ? Rings(800)
                      : HighDim(700);
}

class RdGbgThreadDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(RdGbgThreadDeterminismTest, OutputIdenticalAcrossThreadCounts) {
  const int which = GetParam();
  const Dataset ds = PickDataset(which);
  RdGbgConfig cfg;
  cfg.seed = 77 + which;
  cfg.num_threads = 1;
  const RdGbgResult reference = GenerateRdGbg(ds, cfg);
  for (int threads : ThreadCountsUnderTest()) {
    cfg.num_threads = threads;
    const RdGbgResult run = GenerateRdGbg(ds, cfg);
    ExpectIdenticalGranulation(reference, run, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(SyntheticDatasets, RdGbgThreadDeterminismTest,
                         ::testing::Range(0, 4));

// The index-strategy axis: every tree-backed neighbor pass — the
// DynamicKdTree, and the metric BallTree — must reproduce the flat
// scan's granulation exactly — same balls (centers, radii, members),
// noise, orphans, iterations — at every thread count. Both tree
// strategies also force the r_conf pass through the incremental
// BallSurfaceIndex from the first ball (ResolveRdGbgSurfaceThreshold),
// so this suite is simultaneously the end-to-end bit-identity check for
// the surface index against the flat parallel gap scan the kFlat
// reference uses. This equality contract is what makes
// RdGbgConfig::index_strategy a pure wall-clock knob that kAuto may
// flip freely by problem size.
class RdGbgStrategyEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RdGbgStrategyEquivalenceTest, TreeStrategiesMatchFlatBitForBit) {
  const int which = GetParam();
  const Dataset ds = PickDataset(which);
  RdGbgConfig cfg;
  cfg.seed = 177 + which;
  cfg.num_threads = 1;
  cfg.index_strategy = IndexStrategy::kFlat;
  const RdGbgResult reference = GenerateRdGbg(ds, cfg);
  for (IndexStrategy strategy :
       {IndexStrategy::kTree, IndexStrategy::kBallTree}) {
    cfg.index_strategy = strategy;
    for (int threads : ThreadCountsUnderTest()) {
      cfg.num_threads = threads;
      const RdGbgResult run = GenerateRdGbg(ds, cfg);
      ExpectIdenticalGranulation(reference, run, threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SyntheticDatasets, RdGbgStrategyEquivalenceTest,
                         ::testing::Range(0, 4));

// GB-kNN's ball-center scan has the same contract: both center tree
// backends and the flat scan must vote out identical labels for every
// query.
TEST(GbKnnStrategyEquivalenceTest, CenterTreePredictionsMatchFlat) {
  const Dataset train = OverlappingBlobs(900);
  const Dataset test = OverlappingBlobs(400);
  for (int k : {1, 3, 7}) {
    RdGbgConfig gbg;
    gbg.seed = 15 + k;
    gbg.index_strategy = IndexStrategy::kFlat;
    GbKnnClassifier flat(gbg, k);
    Pcg32 rng_flat(8);
    flat.Fit(train, &rng_flat);
    ASSERT_EQ(flat.resolved_index_strategy(), IndexStrategy::kFlat);
    const std::vector<int> expected = flat.PredictBatch(test.x());

    for (IndexStrategy strategy :
         {IndexStrategy::kTree, IndexStrategy::kBallTree}) {
      gbg.index_strategy = strategy;
      GbKnnClassifier tree(gbg, k);
      Pcg32 rng_tree(8);
      tree.Fit(train, &rng_tree);
      ASSERT_EQ(tree.resolved_index_strategy(), strategy);

      ASSERT_EQ(tree.PredictBatch(test.x()), expected) << "k=" << k;

      // Flipping the knob on a fitted model re-resolves in place.
      tree.set_index_strategy(IndexStrategy::kFlat);
      ASSERT_EQ(tree.resolved_index_strategy(), IndexStrategy::kFlat);
      ASSERT_EQ(tree.PredictBatch(test.x()), expected);
    }
  }
}

// The sampled tier rides the same axis: at recall 1.0 it scans every
// ball, so it must match the flat reference bit for bit; below 1.0 the
// candidate set is a fixed seeded permutation prefix — approximate
// against flat, but still bit-identical across thread counts (the
// kernel scan chunks deterministically and the (score, index) order is
// total).
TEST(GbKnnStrategyEquivalenceTest, SampledStrategyDeterminism) {
  const Dataset train = OverlappingBlobs(900);
  const Dataset test = OverlappingBlobs(400);
  for (int k : {1, 3}) {
    RdGbgConfig gbg;
    gbg.seed = 15 + k;
    gbg.index_strategy = IndexStrategy::kFlat;
    GbKnnClassifier flat(gbg, k);
    Pcg32 rng_flat(8);
    flat.Fit(train, &rng_flat);
    const std::vector<int> expected = flat.PredictBatch(test.x());

    gbg.index_strategy = IndexStrategy::kSampled;
    GbKnnClassifier sampled(gbg, k);
    Pcg32 rng_sampled(8);
    sampled.Fit(train, &rng_sampled);
    ASSERT_EQ(sampled.resolved_index_strategy(), IndexStrategy::kSampled);
    // Training is always exact: the sampled knob only shapes inference,
    // so the granulation underneath must equal the flat-trained one.
    ASSERT_EQ(sampled.num_balls(), flat.num_balls()) << "k=" << k;

    ASSERT_EQ(sampled.PredictBatch(test.x()), expected)
        << "recall=1.0 must be bit-identical, k=" << k;

    for (double recall : {0.5, 0.9}) {
      sampled.set_recall_target(recall);
      const std::vector<int> reference = sampled.PredictBatch(test.x());
      for (int threads : ThreadCountsUnderTest()) {
        gbg.num_threads = threads;
        GbKnnClassifier clf(gbg, k);
        Pcg32 rng(8);
        clf.Fit(train, &rng);
        clf.set_recall_target(recall);
        ASSERT_EQ(clf.PredictBatch(test.x()), reference)
            << "k=" << k << " recall=" << recall << " threads=" << threads;
      }
      gbg.num_threads = 1;
    }
  }
}

TEST(KMeansThreadDeterminismTest, AssignmentsAndCentersIdentical) {
  const Dataset ds = OverlappingBlobs(1200);
  KMeansConfig cfg;
  cfg.num_clusters = 7;
  cfg.max_iterations = 25;
  cfg.num_threads = 1;
  Pcg32 rng_ref(9);
  const KMeansResult reference = RunKMeans(ds.x(), cfg, &rng_ref);
  for (int threads : ThreadCountsUnderTest()) {
    cfg.num_threads = threads;
    Pcg32 rng(9);
    const KMeansResult run = RunKMeans(ds.x(), cfg, &rng);
    ASSERT_EQ(reference.assignments, run.assignments) << "threads=" << threads;
    ASSERT_EQ(reference.iterations, run.iterations);
    ASSERT_EQ(reference.centers.data(), run.centers.data())
        << "threads=" << threads;
  }
}

TEST(DpcThreadDeterminismTest, DensityDeltaPeaksAssignmentsIdentical) {
  const Dataset ds = Rings(500);
  DpcConfig cfg;
  cfg.num_clusters = 3;
  cfg.num_threads = 1;
  const DpcResult reference = RunDpc(ds.x(), cfg);
  for (int threads : ThreadCountsUnderTest()) {
    cfg.num_threads = threads;
    const DpcResult run = RunDpc(ds.x(), cfg);
    ASSERT_EQ(reference.density, run.density) << "threads=" << threads;
    ASSERT_EQ(reference.delta, run.delta) << "threads=" << threads;
    ASSERT_EQ(reference.peaks, run.peaks);
    ASSERT_EQ(reference.assignments, run.assignments);
  }
}

TEST(GbKnnThreadDeterminismTest, BatchPredictionsIdentical) {
  const Dataset train = OverlappingBlobs(700);
  const Dataset test = OverlappingBlobs(300);
  RdGbgConfig gbg;
  gbg.seed = 5;
  gbg.num_threads = 1;
  GbKnnClassifier reference(gbg, /*k=*/3);
  Pcg32 rng_ref(4);
  reference.Fit(train, &rng_ref);
  const std::vector<int> expected = reference.PredictBatch(test.x());
  for (int threads : ThreadCountsUnderTest()) {
    gbg.num_threads = threads;
    GbKnnClassifier clf(gbg, /*k=*/3);
    Pcg32 rng(4);
    clf.Fit(train, &rng);
    ASSERT_EQ(clf.PredictBatch(test.x()), expected) << "threads=" << threads;
  }
}

// A model served through the ModelRegistry's micro-batching engine has
// the same contract: batch composition is a wall-clock detail, never a
// prediction input, so any number of concurrent callers sharing the
// served engine must reproduce the fitted model's serial PredictBatch
// bit-for-bit — snapshot per request, like the server's workers.
TEST(RegistryThreadDeterminismTest, ServedPredictionsIdenticalAcrossCallers) {
  const servetest::ModelBundle bundle = servetest::MakeGbKnnBundle("S5");
  const Dataset& test = bundle.split.test;
  for (int threads : ThreadCountsUnderTest()) {
    ModelRegistry registry(servetest::SmallBatchOptions());
    ASSERT_TRUE(registry.Publish("m", servetest::LoadBundle(bundle)).ok());
    const int callers = ResolveNumThreads(threads);
    std::vector<int> got(test.size(), -1);
    std::vector<std::thread> pool;
    pool.reserve(callers);
    for (int t = 0; t < callers; ++t) {
      pool.emplace_back([&, t] {
        for (int i = t; i < test.size(); i += callers) {
          const std::shared_ptr<const ServedModel> snap = registry.Get("m");
          ASSERT_NE(snap, nullptr);
          const StatusOr<int> label =
              snap->engine->Predict(test.row(i), test.num_features());
          ASSERT_TRUE(label.ok()) << label.status().ToString();
          got[i] = *label;
        }
      });
    }
    for (std::thread& th : pool) th.join();
    ASSERT_EQ(got, bundle.expected) << "callers=" << callers;
  }
}

}  // namespace
}  // namespace gbx
