#include "sampling/tomek.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace gbx {
namespace {

TEST(TomekTest, FindsCraftedLink) {
  // Two clusters plus a heterogeneous mutual-NN pair in the middle.
  Matrix x = Matrix::FromRows({
      {0.0, 0.0}, {0.2, 0.0}, {0.0, 0.2},   // class 0 cluster
      {10.0, 10.0}, {10.2, 10.0},           // class 1 cluster
      {5.0, 5.0}, {5.1, 5.0},               // the link: 5 (cls 0), 6 (cls 1)
  });
  const Dataset ds(std::move(x), {0, 0, 0, 1, 1, 0, 1});
  const auto links = TomekLinksSampler::FindLinks(ds);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].first, 5);
  EXPECT_EQ(links[0].second, 6);
}

TEST(TomekTest, NoLinksInWellSeparatedData) {
  Matrix x = Matrix::FromRows(
      {{0, 0}, {0.1, 0}, {0.2, 0}, {10, 10}, {10.1, 10}, {10.2, 10}});
  const Dataset ds(std::move(x), {0, 0, 0, 1, 1, 1});
  EXPECT_TRUE(TomekLinksSampler::FindLinks(ds).empty());
}

TEST(TomekTest, MutualityRequired) {
  // 1-D: a=0 (cls0), b=1 (cls1), c=1.5 (cls1). b's NN is c (homogeneous),
  // so (a, b) is not a link even though a's NN is b.
  Matrix x = Matrix::FromRows({{0.0}, {1.0}, {1.5}});
  const Dataset ds(std::move(x), {0, 1, 1});
  EXPECT_TRUE(TomekLinksSampler::FindLinks(ds).empty());
}

TEST(TomekTest, RemovesMajorityEndpointOnly) {
  Matrix x = Matrix::FromRows({
      {0.0, 0.0}, {0.2, 0.0}, {0.0, 0.2}, {0.2, 0.2},  // class 0 (majority)
      {10.0, 10.0},                                    // class 1
      {5.0, 5.0}, {5.1, 5.0},                          // link pair
  });
  const Dataset ds(std::move(x), {0, 0, 0, 0, 1, 0, 1});
  TomekLinksSampler tomek;
  Pcg32 rng(1);
  const Dataset out = tomek.Sample(ds, &rng);
  EXPECT_EQ(out.size(), ds.size() - 1);
  // The majority-class endpoint (index 5, at (5.0, 5.0)) must be gone; the
  // minority endpoint (5.1, 5.0) must remain.
  bool majority_endpoint_present = false;
  bool minority_endpoint_present = false;
  for (int i = 0; i < out.size(); ++i) {
    if (out.feature(i, 0) == 5.0 && out.feature(i, 1) == 5.0) {
      majority_endpoint_present = true;
    }
    if (out.feature(i, 0) == 5.1) minority_endpoint_present = true;
  }
  EXPECT_FALSE(majority_endpoint_present);
  EXPECT_TRUE(minority_endpoint_present);
}

TEST(TomekTest, RemoveBothPolicy) {
  Matrix x = Matrix::FromRows({
      {0.0, 0.0}, {0.2, 0.0}, {0.0, 0.2}, {0.2, 0.2},
      {10.0, 10.0},
      {5.0, 5.0}, {5.1, 5.0},
  });
  const Dataset ds(std::move(x), {0, 0, 0, 0, 1, 0, 1});
  TomekLinksSampler tomek(/*remove_both=*/true);
  Pcg32 rng(2);
  const Dataset out = tomek.Sample(ds, &rng);
  EXPECT_EQ(out.size(), ds.size() - 2);
}

TEST(TomekTest, CleansNoisyBoundary) {
  BlobsConfig cfg;
  cfg.num_samples = 400;
  cfg.num_classes = 2;
  cfg.center_spread = 2.0;   // strongly overlapping
  cfg.cluster_std = 1.5;
  Pcg32 gen(3);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  TomekLinksSampler tomek;
  Pcg32 rng(4);
  const Dataset out = tomek.Sample(ds, &rng);
  EXPECT_LT(out.size(), ds.size());  // overlapping data must contain links
  EXPECT_GT(out.size(), ds.size() / 2);
}

TEST(TomekTest, TinyDatasets) {
  const Dataset one(Matrix::FromRows({{1.0}}), {0});
  EXPECT_TRUE(TomekLinksSampler::FindLinks(one).empty());
  TomekLinksSampler tomek;
  Pcg32 rng(5);
  EXPECT_EQ(tomek.Sample(one, &rng).size(), 1);
}

}  // namespace
}  // namespace gbx
