// Request tracing (common/trace.h) and the structured logger
// (common/log.h): span-tree construction and formatting, ring
// eviction, the slow-trace threshold emitting through the logger, and
// the logger's level filter and key=value quoting.
#include "common/trace.h"

#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"

namespace gbx {
namespace {

using logging::LogEnabled;
using logging::LogLevel;
using logging::SetLogSinkForTest;
using logging::SetMinLogLevel;
using trace::FormatTrace;
using trace::Trace;
using trace::TraceRing;

/// Captures GBX_SLOG output for the duration of a test.
class LogCapture {
 public:
  LogCapture() {
    SetLogSinkForTest([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  ~LogCapture() { SetLogSinkForTest(nullptr); }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(TraceTest, RootSpanAndChildrenCarryTiming) {
  Trace t(42, "predict");
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_EQ(t.spans()[0].parent, -1);
  EXPECT_EQ(t.spans()[0].name, "predict");

  const int queue = t.AddSpan("queue_wait", 0.0, 0.5);
  const int compute = t.AddSpan("compute", 0.6, 1.2, 0, "batch=4");
  t.AddSpan("matrix_fill", 0.6, 0.1, compute);
  t.Finish(2.0);

  EXPECT_EQ(t.total_ms(), 2.0);
  ASSERT_EQ(t.spans().size(), 4u);
  EXPECT_EQ(t.spans()[static_cast<std::size_t>(queue)].duration_ms, 0.5);
  EXPECT_EQ(t.spans()[3].parent, compute);
  EXPECT_EQ(t.spans()[static_cast<std::size_t>(compute)].note, "batch=4");
}

TEST(TraceTest, AnnotateAppendsAndIgnoresBadIds) {
  Trace t(1, "predict");
  t.Annotate(0, "model=m1");
  t.Annotate(0, "deadline_expired");
  EXPECT_EQ(t.spans()[0].note, "model=m1 deadline_expired");
  t.Annotate(99, "ignored");   // out of range: no-op, no crash
  t.Annotate(-1, "ignored");
  EXPECT_EQ(t.spans().size(), 1u);
}

TEST(TraceTest, FormatRendersIndentedTreeInParentOrder) {
  Trace t(7, "predict");
  const int compute = t.AddSpan("compute", 0.5, 1.0);
  t.AddSpan("encode", 1.5, 0.1);
  t.AddSpan("matrix_fill", 0.5, 0.2, compute);
  t.Finish(1.75);
  const std::string text = FormatTrace(t);
  EXPECT_NE(text.find("trace id=7 name=predict total_ms=1.750"),
            std::string::npos)
      << text;
  // Children indent under their parent; the nested child indents twice.
  EXPECT_NE(text.find("\n  compute @0.500ms +1.000ms"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\n    matrix_fill @0.500ms +0.200ms"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\n  encode @1.500ms +0.100ms"), std::string::npos)
      << text;
  // matrix_fill (a compute child) renders before the sibling encode.
  EXPECT_LT(text.find("matrix_fill"), text.find("encode"));

  // The root annotation rides on the header line.
  t.Annotate(0, "model=m1");
  EXPECT_NE(FormatTrace(t).find("total_ms=1.750 [model=m1]\n"),
            std::string::npos)
      << FormatTrace(t);
}

Trace MakeTrace(std::uint64_t id, double total_ms) {
  Trace t(id, "predict");
  t.AddSpan("compute", 0.0, total_ms);
  t.Finish(total_ms);
  return t;
}

TEST(TraceRingTest, RecentKeepsNewestFirstAndEvictsOldest) {
  TraceRing ring(/*recent_capacity=*/4, /*slow_capacity=*/2);
  ring.set_slow_threshold_ms(0);  // slow capture off for this test
  for (std::uint64_t id = 1; id <= 6; ++id) {
    ring.Record(MakeTrace(id, 1.0));
  }
  EXPECT_EQ(ring.recorded(), 6);
  const std::vector<Trace> recent = ring.Recent(10);
  ASSERT_EQ(recent.size(), 4u);  // capacity evicted ids 1 and 2
  EXPECT_EQ(recent[0].id(), 6u);
  EXPECT_EQ(recent[3].id(), 3u);
  EXPECT_EQ(ring.Recent(2).size(), 2u);
  EXPECT_EQ(ring.Recent(2)[0].id(), 6u);
  EXPECT_TRUE(ring.Slow(10).empty());
}

TEST(TraceRingTest, SlowThresholdCapturesAndLogs) {
  LogCapture capture;
  SetMinLogLevel(LogLevel::kWarn);
  TraceRing ring(8, 8);
  ring.set_slow_threshold_ms(10.0);
  ring.Record(MakeTrace(1, 5.0));    // under threshold
  ring.Record(MakeTrace(2, 10.0));   // at threshold: slow
  ring.Record(MakeTrace(3, 250.0));  // over: slow
  SetMinLogLevel(LogLevel::kInfo);

  const std::vector<Trace> slow = ring.Slow(10);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].id(), 3u);
  EXPECT_EQ(slow[1].id(), 2u);

  // Each slow trace emitted one trace.slow warn line with its span tree.
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("level=warn"), std::string::npos) << line;
    EXPECT_NE(line.find("event=trace.slow"), std::string::npos) << line;
    EXPECT_NE(line.find("compute"), std::string::npos) << line;
  }
}

TEST(TraceRingTest, NonPositiveThresholdDisablesSlowCapture) {
  LogCapture capture;
  TraceRing ring(8, 8);
  ring.set_slow_threshold_ms(0.0);
  ring.Record(MakeTrace(1, 1e6));
  EXPECT_TRUE(ring.Slow(10).empty());
  EXPECT_TRUE(capture.lines().empty());
  EXPECT_EQ(ring.Recent(10).size(), 1u);
}

TEST(TraceRingTest, ClearEmptiesRingsButKeepsLifetimeCount) {
  TraceRing ring(8, 8);
  ring.set_slow_threshold_ms(0);
  ring.Record(MakeTrace(1, 1.0));
  ring.Record(MakeTrace(2, 1.0));
  ring.Clear();
  EXPECT_TRUE(ring.Recent(10).empty());
  EXPECT_TRUE(ring.Slow(10).empty());
}

TEST(LogTest, LevelFilterGatesEmission) {
  LogCapture capture;
  SetMinLogLevel(LogLevel::kWarn);
  GBX_SLOG(kInfo, "filtered.out").Kv("k", 1);
  GBX_SLOG(kWarn, "let.through").Kv("k", 2);
  SetMinLogLevel(LogLevel::kInfo);
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("event=let.through"), std::string::npos);
  EXPECT_NE(lines[0].find("k=2"), std::string::npos);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
}

TEST(LogTest, ValuesWithSpacesOrQuotesAreQuoted) {
  LogCapture capture;
  GBX_SLOG(kInfo, "quoting")
      .Kv("plain", "word")
      .Kv("spaced", "two words")
      .Kv("quoted", "say \"hi\"")
      .Kv("flag", true)
      .Kv("ratio", 1.5);
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("plain=word"), std::string::npos) << line;
  EXPECT_NE(line.find("spaced=\"two words\""), std::string::npos) << line;
  EXPECT_NE(line.find("quoted=\"say \\\"hi\\\"\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("flag=true"), std::string::npos) << line;
  EXPECT_NE(line.find("ts="), std::string::npos) << line;
  EXPECT_NE(line.find("level=info"), std::string::npos) << line;
}

}  // namespace
}  // namespace gbx
