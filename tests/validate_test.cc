#include "data/validate.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace gbx {
namespace {

TEST(ValidateTest, AcceptsWellFormedDataset) {
  const Dataset ds(Matrix::FromRows({{1, 2}, {3, 4}}), {0, 1});
  EXPECT_TRUE(ValidateDataset(ds).ok());
}

TEST(ValidateTest, RejectsNanFeature) {
  Matrix x = Matrix::FromRows({{1.0, 2.0}});
  x.At(0, 1) = std::numeric_limits<double>::quiet_NaN();
  const Dataset ds(std::move(x), {0});
  const Status s = ValidateDataset(ds);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, RejectsInfFeature) {
  Matrix x = Matrix::FromRows({{1.0}});
  x.At(0, 0) = std::numeric_limits<double>::infinity();
  const Dataset ds(std::move(x), {0});
  EXPECT_FALSE(ValidateDataset(ds).ok());
}

TEST(ValidateTest, RejectsTooFewSamples) {
  const Dataset ds(Matrix::FromRows({{1.0}}), {0});
  ValidateOptions options;
  options.min_samples = 10;
  const Status s = ValidateDataset(ds, options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ValidateTest, RequireTwoClasses) {
  const Dataset single(Matrix::FromRows({{1.0}, {2.0}}), {0, 0});
  ValidateOptions options;
  options.require_two_classes = true;
  EXPECT_FALSE(ValidateDataset(single, options).ok());

  const Dataset two(Matrix::FromRows({{1.0}, {2.0}}), {0, 1});
  EXPECT_TRUE(ValidateDataset(two, options).ok());
}

TEST(ValidateTest, RequireTwoPopulatedClasses) {
  // num_classes = 3 but only one populated.
  const Dataset ds(Matrix::FromRows({{1.0}, {2.0}}), {2, 2}, 3);
  ValidateOptions options;
  options.require_two_classes = true;
  EXPECT_FALSE(ValidateDataset(ds, options).ok());
}

TEST(ValidateTest, EmptyDatasetFailsMinSamples) {
  const Dataset ds;
  EXPECT_FALSE(ValidateDataset(ds).ok());
}

}  // namespace
}  // namespace gbx
