#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "viz/pca.h"
#include "viz/tsne.h"

namespace gbx {
namespace {

TEST(PcaTest, RecoversDominantDirection) {
  // Data stretched along (1, 1)/sqrt(2): the first component must align.
  Pcg32 gen(1);
  Matrix x(300, 2);
  for (int i = 0; i < 300; ++i) {
    const double t = gen.NextGaussian() * 5.0;
    const double noise = gen.NextGaussian() * 0.1;
    x.At(i, 0) = t + noise;
    x.At(i, 1) = t - noise;
  }
  Pcg32 rng(2);
  const PcaResult pca = FitPca(x, 2, &rng);
  const double* axis = pca.components.Row(0);
  EXPECT_NEAR(std::fabs(axis[0]), std::sqrt(0.5), 0.01);
  EXPECT_NEAR(std::fabs(axis[1]), std::sqrt(0.5), 0.01);
  EXPECT_GT(pca.explained_variance[0], pca.explained_variance[1] * 100);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Pcg32 gen(3);
  Matrix x(200, 5);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 5; ++j) x.At(i, j) = gen.NextGaussian() * (j + 1);
  }
  Pcg32 rng(4);
  const PcaResult pca = FitPca(x, 3, &rng);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (int j = 0; j < 5; ++j) {
        dot += pca.components.At(a, j) * pca.components.At(b, j);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(PcaTest, VarianceDecreases) {
  Pcg32 gen(5);
  Matrix x(150, 4);
  for (int i = 0; i < 150; ++i) {
    for (int j = 0; j < 4; ++j) x.At(i, j) = gen.NextGaussian() * (4 - j);
  }
  Pcg32 rng(6);
  const PcaResult pca = FitPca(x, 4, &rng);
  for (std::size_t i = 1; i < pca.explained_variance.size(); ++i) {
    EXPECT_GE(pca.explained_variance[i - 1],
              pca.explained_variance[i] - 1e-9);
  }
}

TEST(PcaTest, TransformShape) {
  Pcg32 gen(7);
  Matrix x(50, 6);
  for (int i = 0; i < 50; ++i) {
    for (int j = 0; j < 6; ++j) x.At(i, j) = gen.NextGaussian();
  }
  Pcg32 rng(8);
  const PcaResult pca = FitPca(x, 2, &rng);
  const Matrix projected = PcaTransform(pca, x);
  EXPECT_EQ(projected.rows(), 50);
  EXPECT_EQ(projected.cols(), 2);
}

TEST(TsneTest, OutputShapeAndFiniteness) {
  BlobsConfig cfg;
  cfg.num_samples = 60;
  cfg.num_classes = 2;
  cfg.num_features = 5;
  Pcg32 gen(9);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  TsneConfig tsne_cfg;
  tsne_cfg.iterations = 150;
  const Matrix y = RunTsne(ds.x(), tsne_cfg);
  ASSERT_EQ(y.rows(), 60);
  ASSERT_EQ(y.cols(), 2);
  for (int i = 0; i < y.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(y.At(i, 0)));
    EXPECT_TRUE(std::isfinite(y.At(i, 1)));
  }
}

TEST(TsneTest, SeparatesWellSeparatedClusters) {
  BlobsConfig cfg;
  cfg.num_samples = 80;
  cfg.num_classes = 2;
  cfg.num_features = 10;
  cfg.center_spread = 20.0;
  cfg.cluster_std = 0.5;
  Pcg32 gen(10);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  TsneConfig tsne_cfg;
  tsne_cfg.iterations = 300;
  tsne_cfg.perplexity = 15.0;
  const Matrix y = RunTsne(ds.x(), tsne_cfg);
  // Mean intra-class embedding distance far below inter-class distance.
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (int i = 0; i < y.rows(); ++i) {
    for (int j = i + 1; j < y.rows(); ++j) {
      const double d = EuclideanDistance(y.Row(i), y.Row(j), 2);
      if (ds.label(i) == ds.label(j)) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  EXPECT_LT(intra / intra_n, 0.5 * inter / inter_n);
}

TEST(TsneTest, Deterministic) {
  BlobsConfig cfg;
  cfg.num_samples = 40;
  cfg.num_classes = 2;
  Pcg32 gen(11);
  const Dataset ds = MakeGaussianBlobs(cfg, &gen);
  TsneConfig tsne_cfg;
  tsne_cfg.iterations = 100;
  tsne_cfg.seed = 5;
  const Matrix a = RunTsne(ds.x(), tsne_cfg);
  const Matrix b = RunTsne(ds.x(), tsne_cfg);
  for (int i = 0; i < a.rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.At(i, 0), b.At(i, 0));
    EXPECT_DOUBLE_EQ(a.At(i, 1), b.At(i, 1));
  }
}

}  // namespace
}  // namespace gbx
